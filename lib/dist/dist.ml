module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Nibble = Hbn_nibble.Nibble
module Strategy = Hbn_core.Strategy
module Mapping = Hbn_core.Mapping
module Trace = Hbn_obs.Trace
module Sink = Hbn_obs.Sink

type stats = { rounds : int; messages : int; max_node_work : int }

let ceil_log2 k =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
  go 0 (max 1 k)

(* Pipelined convergecast schedule: [send.(v)] for object [x] is the round
   at which [v] forwards its aggregate for [x] to its parent. A node can
   forward wave [x] once every child has (previous round) and it has
   already forwarded wave [x-1] (one message per edge per round). Returns
   the completion round at the root of the last wave. *)
let convergecast_rounds tree objects =
  let r = Tree.rooting tree in
  let n = Tree.n tree in
  let prev = Array.make n 0 in
  let last_done = ref 0 in
  for x = 0 to objects - 1 do
    let send = Array.make n 0 in
    (* Children precede parents when preorder is traversed backwards. *)
    let pre = r.Tree.preorder in
    for i = n - 1 downto 0 do
      let v = pre.(i) in
      let from_children =
        Array.fold_left
          (fun acc c -> max acc (send.(c) + 1))
          (x + 1) r.Tree.children.(v)
      in
      send.(v) <- max from_children (prev.(v) + 1)
    done;
    Array.blit send 0 prev 0 n;
    let root_done =
      Array.fold_left
        (fun acc c -> max acc (send.(c) + 1))
        (x + 1) r.Tree.children.(r.Tree.root)
    in
    last_done := max !last_done root_done
  done;
  !last_done

(* Pipelined broadcast: wave x leaves the root at round x+1 and reaches
   depth d at round x+1+d. *)
let broadcast_rounds tree objects =
  let r = Tree.rooting tree in
  let depth = Array.fold_left max 0 r.Tree.depth in
  objects + depth

let sweep_messages tree objects = objects * (Tree.n tree - 1)

let nibble_rounds w =
  let tree = Workload.tree w in
  let objects = Workload.num_objects w in
  let sets = Nibble.place_all w in
  let per_object = Array.map (fun cs -> cs.Nibble.nodes) sets in
  (* Two convergecasts (subtree weights; gravity-candidate election) and
     two broadcasts (totals and contention; elected center), pipelined
     over objects within each sweep, sweeps run back to back. *)
  let rounds =
    (2 * convergecast_rounds tree objects) + (2 * broadcast_rounds tree objects)
  in
  let messages = 4 * sweep_messages tree objects in
  (* Per round a node handles one message per incident edge per sweep. *)
  let max_node_work =
    List.fold_left
      (fun acc v -> max acc (4 * objects * Tree.degree tree v))
      0
      (List.init (Tree.n tree) (fun i -> i))
  in
  if Trace.enabled () then begin
    Trace.count ~by:messages "dist.messages";
    Trace.event "dist.nibble"
      ~attrs:
        [
          ("rounds", Sink.Int rounds);
          ("messages", Sink.Int messages);
          ("max_node_work", Sink.Int max_node_work);
        ]
  end;
  (per_object, { rounds; messages; max_node_work })

let strategy_rounds w =
  let tree = Workload.tree w in
  let height = Tree.height tree in
  let _, nibble_stats = nibble_rounds w in
  let res = Strategy.run w in
  let sets = Nibble.place_all w in
  (* Deletion: one bottom-up wave per component, pipelined over objects;
     each deletion forwards the deleted copy's bookkeeping to the parent. *)
  let deletion_rounds =
    let component_height cs =
      List.fold_left
        (fun acc v -> max acc cs.Nibble.rooted.Tree.depth.(v))
        0 cs.Nibble.nodes
    in
    Array.to_list sets
    |> List.mapi (fun x cs -> x + 1 + component_height cs)
    |> List.fold_left max 0
  in
  let deletion_messages = res.Strategy.deletions in
  (* Mapping: height rounds up, height rounds down; every movement is one
     message and costs the mover O(log degree) heap work. *)
  let mapping_rounds = 2 * height in
  let work = Array.make (Tree.n tree) 0 in
  let mapping_messages =
    match res.Strategy.mapping with
    | None -> 0
    | Some s ->
      List.iter
        (fun c ->
          let v = c.Hbn_core.Copy.node in
          work.(v) <- work.(v) + ceil_log2 (Tree.degree tree v))
        res.Strategy.copies;
      s.Mapping.moves_up + s.Mapping.moves_down
  in
  let max_node_work =
    Array.fold_left max nibble_stats.max_node_work work
  in
  let stats =
    {
      rounds = nibble_stats.rounds + deletion_rounds + mapping_rounds;
      messages = nibble_stats.messages + deletion_messages + mapping_messages;
      max_node_work;
    }
  in
  if Trace.enabled () then begin
    Trace.count ~by:(deletion_messages + mapping_messages) "dist.messages";
    Trace.event "dist.strategy"
      ~attrs:
        [
          ("rounds", Sink.Int stats.rounds);
          ("messages", Sink.Int stats.messages);
          ("max_node_work", Sink.Int stats.max_node_work);
        ]
  end;
  (res.Strategy.placement, stats)

type fault_report =
  | Recovered of {
      placement : Placement.t;
      emulated : stats;
      nibble : Dist_nibble.robust_stats;
      log : Faults.event list;
      health : Hbn_obs.Monitor.verdict option;
    }
  | Degraded of {
      reason : [ `Round_limit | `Undecided | `Diverged ];
      partial : int list array;
      nibble : Dist_nibble.robust_stats;
      log : Faults.event list;
      health : Hbn_obs.Monitor.verdict option;
    }

let reason_name = function
  | `Round_limit -> "round_limit"
  | `Undecided -> "undecided"
  | `Diverged -> "diverged"

let run_with_faults ?max_rounds ?timeout ?(faults = Faults.none) ?telemetry
    ?monitor ?link w =
  (* The monitor ingests inside the runtime; only the verdict is read
     back here, after run_robust returns. *)
  let health () = Option.map Hbn_obs.Monitor.health monitor in
  let report =
    match
      Dist_nibble.run_robust ?max_rounds ?timeout ~faults ?telemetry ?monitor
        ?link w
    with
    | Dist_nibble.Degraded { reason; partial; stats; log } ->
      Degraded
        {
          reason = (reason :> [ `Round_limit | `Undecided | `Diverged ]);
          partial;
          nibble = stats;
          log;
          health = health ();
        }
    | Dist_nibble.Complete { placement = sets; stats = nibble; log } ->
      let seq = Nibble.place_all w in
      if not (Array.for_all2 (fun got cs -> got = cs.Nibble.nodes) sets seq)
      then
        Degraded
          { reason = `Diverged; partial = sets; nibble; log; health = health () }
      else
        (* The recovered copy sets equal the pristine nibble's, so the
           remainder of the pipeline (deletion, mapping) proceeds exactly
           as in the fault-free emulation. *)
        let placement, emulated = strategy_rounds w in
        Recovered { placement; emulated; nibble; log; health = health () }
  in
  if Trace.enabled () then begin
    match report with
    | Recovered { nibble; log; _ } ->
      Trace.event "dist.recovered"
        ~attrs:
          [
            ("rounds", Sink.Int nibble.Dist_nibble.runtime.Runtime.rounds);
            ("retransmissions", Sink.Int nibble.Dist_nibble.retransmissions);
            ("faults", Sink.Int (List.length log));
          ]
    | Degraded { reason; nibble; log; _ } ->
      Trace.event "dist.degraded"
        ~attrs:
          [
            ("reason", Sink.Str (reason_name reason));
            ("undecided", Sink.Int nibble.Dist_nibble.undecided);
            ("faults", Sink.Int (List.length log));
          ]
  end;
  report
