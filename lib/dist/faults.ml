module Prng = Hbn_prng.Prng
module Sink = Hbn_obs.Sink

type kind =
  | Dropped of { edge : int; src : int; dst : int }
  | Crashed of { node : int }
  | Restarted of { node : int }
  | Cut of { edge : int }
  | Restored of { edge : int }

type event = { round : int; kind : kind }

type plan = {
  seed : int;
  drop : float;
  drop_until : int;
  crashes : (int * int * int) list;  (* (node, from, to) inclusive *)
  cuts : (int * int * int) list;  (* (edge, from, to) inclusive *)
}

let none = { seed = 0; drop = 0.; drop_until = 64; crashes = []; cuts = [] }

let check_window what (id, a, b) =
  if id < 0 then
    invalid_arg (Printf.sprintf "Faults.make: negative %s id %d" what id);
  if a < 1 || b < a then
    invalid_arg
      (Printf.sprintf "Faults.make: bad %s window %d-%d (rounds start at 1)"
         what a b)

let make ?(seed = 0) ?(drop = 0.) ?(drop_until = 64) ?(crashes = [])
    ?(cuts = []) () =
  if drop < 0. || drop > 1. then
    invalid_arg "Faults.make: drop probability must be in [0, 1]";
  if drop_until < 0 then invalid_arg "Faults.make: negative drop horizon";
  List.iter (check_window "node") crashes;
  List.iter (check_window "edge") cuts;
  { seed; drop; drop_until; crashes; cuts }

let is_empty p = p.drop = 0. && p.crashes = [] && p.cuts = []

let seed p = p.seed

let quiet_after p =
  List.fold_left
    (fun acc (_, _, b) -> if b = max_int then max_int else max acc (b + 1))
    0 (p.crashes @ p.cuts)

(* -- queries ------------------------------------------------------------- *)

let drops p ~round ~edge ~src =
  p.drop > 0. && round <= p.drop_until
  && Prng.hash_float ~seed:p.seed [ round; edge; src ] < p.drop

let in_window round (_, a, b) = round >= a && round <= b

let node_down p ~round ~node =
  List.exists (fun ((n, _, _) as w) -> n = node && in_window round w) p.crashes

let edge_cut p ~round ~edge =
  List.exists (fun ((e, _, _) as w) -> e = edge && in_window round w) p.cuts

(* -- virtual-time shims --------------------------------------------------- *)

let round_of_time time =
  if Float.is_nan time || time < 0. then
    invalid_arg "Faults.round_of_time: time must be a number >= 0";
  let c = Float.ceil time in
  if c >= float_of_int max_int then max_int else int_of_float c

let drops_at p ~time ~edge ~src = drops p ~round:(round_of_time time) ~edge ~src

let node_down_at p ~time ~node = node_down p ~round:(round_of_time time) ~node

let edge_cut_at p ~time ~edge = edge_cut p ~round:(round_of_time time) ~edge

(* -- spec grammar -------------------------------------------------------- *)

let parse_window clause s =
  (* "N:A-B" with B a round number or "inf". *)
  let fail () =
    Error
      (Printf.sprintf
         "bad %s clause %S (expected %s=ID:FROM-TO, TO a round or \"inf\")"
         clause s clause)
  in
  match String.split_on_char ':' s with
  | [ id; window ] -> (
    match (int_of_string_opt id, String.split_on_char '-' window) with
    | Some id, [ a; b ] -> (
      let b = if b = "inf" then Some max_int else int_of_string_opt b in
      match (int_of_string_opt a, b) with
      | Some a, Some b -> Ok (id, a, b)
      | _ -> fail ())
    | _ -> fail ())
  | _ -> fail ()

let of_spec ?(seed = 0) s =
  let ( let* ) r f = Result.bind r f in
  (* Split on commas, keeping each clause's start offset so every error
     can point at the offending token: "clause N at char C: ...". *)
  let raw_clauses =
    let acc = ref [] and start = ref 0 in
    String.iteri
      (fun i ch ->
        if ch = ',' then begin
          acc := (!start, String.sub s !start (i - !start)) :: !acc;
          start := i + 1
        end)
      s;
    acc := (!start, String.sub s !start (String.length s - !start)) :: !acc;
    List.rev !acc
  in
  let clauses =
    List.filter (fun (_, c) -> String.trim c <> "") raw_clauses
    |> List.mapi (fun i (pos, c) -> (i + 1, pos, String.trim c))
  in
  let* () =
    if clauses = [] then
      Error "empty fault spec (an explicitly fault-free plan is \"drop=0\")"
    else Ok ()
  in
  let err idx pos fmt =
    Printf.ksprintf
      (fun msg -> Error (Printf.sprintf "clause %d at char %d: %s" idx pos msg))
      fmt
  in
  let window what idx pos v =
    let* w =
      match parse_window what v with
      | Ok w -> Ok w
      | Error m -> err idx pos "%s" m
    in
    let id, a, b = w in
    if id < 0 then err idx pos "negative %s id %d" what id
    else if a < 1 || b < a then
      err idx pos "bad %s window %d-%d (rounds start at 1)" what a b
    else Ok w
  in
  let* parsed =
    List.fold_left
      (fun acc (idx, pos, clause) ->
        let* acc = acc in
        match String.index_opt clause '=' with
        | None -> err idx pos "clause %S has no '='" clause
        | Some i ->
          let key = String.sub clause 0 i in
          let v = String.sub clause (i + 1) (String.length clause - i - 1) in
          let* item =
            match key with
            | "drop" -> (
              match float_of_string_opt v with
              | Some p when p >= 0. && p <= 1. -> Ok (`Drop p)
              | _ -> err idx pos "bad drop probability %S (expected [0, 1])" v)
            | "until" -> (
              match int_of_string_opt v with
              | Some r when r >= 0 -> Ok (`Until r)
              | _ -> err idx pos "bad drop horizon %S (expected a round)" v)
            | "crash" ->
              let* w = window "crash" idx pos v in
              Ok (`Crash w)
            | "cut" ->
              let* w = window "cut" idx pos v in
              Ok (`Cut w)
            | _ -> err idx pos "unknown fault clause %S" key
          in
          Ok ((idx, pos, item) :: acc))
      (Ok []) clauses
  in
  let parsed = List.rev parsed in
  let pick f = List.filter_map (fun (_, _, item) -> f item) parsed in
  let unique what f =
    match List.filter (fun (_, _, item) -> f item <> None) parsed with
    | [] -> Ok None
    | [ (_, _, item) ] -> Ok (f item)
    | _ :: (idx, pos, _) :: _ -> err idx pos "duplicate %s clause" what
  in
  let* drop = unique "drop" (function `Drop p -> Some p | _ -> None) in
  let drop = Option.value drop ~default:0. in
  let* drop_until = unique "until" (function `Until r -> Some r | _ -> None) in
  let drop_until = Option.value drop_until ~default:64 in
  let crashes = pick (function `Crash w -> Some w | _ -> None) in
  let cuts = pick (function `Cut w -> Some w | _ -> None) in
  match make ~seed ~drop ~drop_until ~crashes ~cuts () with
  | p -> Ok p
  | exception Invalid_argument m -> Error m

let to_spec p =
  let window (id, a, b) =
    if b = max_int then Printf.sprintf "%d:%d-inf" id a
    else Printf.sprintf "%d:%d-%d" id a b
  in
  let clauses =
    (if p.drop > 0. then
       [ Printf.sprintf "drop=%g" p.drop; Printf.sprintf "until=%d" p.drop_until ]
     else [])
    @ List.map (fun w -> "crash=" ^ window w) p.crashes
    @ List.map (fun w -> "cut=" ^ window w) p.cuts
  in
  (* The empty plan still renders to something {!of_spec} accepts. *)
  if clauses = [] then "drop=0" else String.concat "," clauses

(* -- rendering ----------------------------------------------------------- *)

let describe ev =
  let what =
    match ev.kind with
    | Dropped { edge; src; dst } ->
      Printf.sprintf "message %d->%d dropped on edge %d" src dst edge
    | Crashed { node } -> Printf.sprintf "crash of node %d" node
    | Restarted { node } -> Printf.sprintf "restart of node %d" node
    | Cut { edge } -> Printf.sprintf "outage of edge %d" edge
    | Restored { edge } -> Printf.sprintf "edge %d restored" edge
  in
  Printf.sprintf "round %d: %s" ev.round what

let sink_event ev =
  let fault, node, edge =
    match ev.kind with
    | Dropped { edge; src; dst = _ } -> ("dropped", src, edge)
    | Crashed { node } -> ("crashed", node, -1)
    | Restarted { node } -> ("restarted", node, -1)
    | Cut { edge } -> ("cut", -1, edge)
    | Restored { edge } -> ("restored", -1, edge)
  in
  {
    Sink.name = "runtime.fault";
    id = 0;
    parent = 0;
    payload = Sink.Fault { round = ev.round; fault; node; edge };
    attrs = [];
  }
