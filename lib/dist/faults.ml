module Prng = Hbn_prng.Prng
module Sink = Hbn_obs.Sink

type kind =
  | Dropped of { edge : int; src : int; dst : int }
  | Crashed of { node : int }
  | Restarted of { node : int }
  | Cut of { edge : int }
  | Restored of { edge : int }

type event = { round : int; kind : kind }

type plan = {
  seed : int;
  drop : float;
  drop_until : int;
  crashes : (int * int * int) list;  (* (node, from, to) inclusive *)
  cuts : (int * int * int) list;  (* (edge, from, to) inclusive *)
}

let none = { seed = 0; drop = 0.; drop_until = 64; crashes = []; cuts = [] }

let check_window what (id, a, b) =
  if id < 0 then
    invalid_arg (Printf.sprintf "Faults.make: negative %s id %d" what id);
  if a < 1 || b < a then
    invalid_arg
      (Printf.sprintf "Faults.make: bad %s window %d-%d (rounds start at 1)"
         what a b)

let make ?(seed = 0) ?(drop = 0.) ?(drop_until = 64) ?(crashes = [])
    ?(cuts = []) () =
  if drop < 0. || drop > 1. then
    invalid_arg "Faults.make: drop probability must be in [0, 1]";
  if drop_until < 0 then invalid_arg "Faults.make: negative drop horizon";
  List.iter (check_window "node") crashes;
  List.iter (check_window "edge") cuts;
  { seed; drop; drop_until; crashes; cuts }

let is_empty p = p.drop = 0. && p.crashes = [] && p.cuts = []

let seed p = p.seed

let quiet_after p =
  List.fold_left
    (fun acc (_, _, b) -> if b = max_int then max_int else max acc (b + 1))
    0 (p.crashes @ p.cuts)

(* -- queries ------------------------------------------------------------- *)

let drops p ~round ~edge ~src =
  p.drop > 0. && round <= p.drop_until
  && Prng.hash_float ~seed:p.seed [ round; edge; src ] < p.drop

let in_window round (_, a, b) = round >= a && round <= b

let node_down p ~round ~node =
  List.exists (fun ((n, _, _) as w) -> n = node && in_window round w) p.crashes

let edge_cut p ~round ~edge =
  List.exists (fun ((e, _, _) as w) -> e = edge && in_window round w) p.cuts

(* -- spec grammar -------------------------------------------------------- *)

let parse_window clause s =
  (* "N:A-B" with B a round number or "inf". *)
  let fail () =
    Error
      (Printf.sprintf
         "bad %s clause %S (expected %s=ID:FROM-TO, TO a round or \"inf\")"
         clause s clause)
  in
  match String.split_on_char ':' s with
  | [ id; window ] -> (
    match (int_of_string_opt id, String.split_on_char '-' window) with
    | Some id, [ a; b ] -> (
      let b = if b = "inf" then Some max_int else int_of_string_opt b in
      match (int_of_string_opt a, b) with
      | Some a, Some b -> Ok (id, a, b)
      | _ -> fail ())
    | _ -> fail ())
  | _ -> fail ()

let of_spec ?(seed = 0) s =
  let ( let* ) r f = Result.bind r f in
  let clauses =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let* () =
    if clauses = [] then
      Error "empty fault spec (an explicitly fault-free plan is \"drop=0\")"
    else Ok ()
  in
  let* parsed =
    List.fold_left
      (fun acc clause ->
        let* acc = acc in
        match String.index_opt clause '=' with
        | None -> Error (Printf.sprintf "clause %S has no '='" clause)
        | Some i ->
          let key = String.sub clause 0 i in
          let v = String.sub clause (i + 1) (String.length clause - i - 1) in
          let* item =
            match key with
            | "drop" -> (
              match float_of_string_opt v with
              | Some p when p >= 0. && p <= 1. -> Ok (`Drop p)
              | _ -> Error (Printf.sprintf "bad drop probability %S" v))
            | "until" -> (
              match int_of_string_opt v with
              | Some r when r >= 0 -> Ok (`Until r)
              | _ -> Error (Printf.sprintf "bad drop horizon %S" v))
            | "crash" ->
              let* w = parse_window "crash" v in
              Ok (`Crash w)
            | "cut" ->
              let* w = parse_window "cut" v in
              Ok (`Cut w)
            | _ -> Error (Printf.sprintf "unknown fault clause %S" key)
          in
          Ok (item :: acc))
      (Ok []) clauses
  in
  let parsed = List.rev parsed in
  let pick f = List.filter_map f parsed in
  let drop =
    match pick (function `Drop p -> Some p | _ -> None) with
    | [] -> Ok 0.
    | [ p ] -> Ok p
    | _ -> Error "duplicate drop clause"
  in
  let* drop = drop in
  let* drop_until =
    match pick (function `Until r -> Some r | _ -> None) with
    | [] -> Ok 64
    | [ r ] -> Ok r
    | _ -> Error "duplicate until clause"
  in
  let crashes = pick (function `Crash w -> Some w | _ -> None) in
  let cuts = pick (function `Cut w -> Some w | _ -> None) in
  match make ~seed ~drop ~drop_until ~crashes ~cuts () with
  | p -> Ok p
  | exception Invalid_argument m -> Error m

let to_spec p =
  let window (id, a, b) =
    if b = max_int then Printf.sprintf "%d:%d-inf" id a
    else Printf.sprintf "%d:%d-%d" id a b
  in
  let clauses =
    (if p.drop > 0. then
       [ Printf.sprintf "drop=%g" p.drop; Printf.sprintf "until=%d" p.drop_until ]
     else [])
    @ List.map (fun w -> "crash=" ^ window w) p.crashes
    @ List.map (fun w -> "cut=" ^ window w) p.cuts
  in
  (* The empty plan still renders to something {!of_spec} accepts. *)
  if clauses = [] then "drop=0" else String.concat "," clauses

(* -- rendering ----------------------------------------------------------- *)

let describe ev =
  let what =
    match ev.kind with
    | Dropped { edge; src; dst } ->
      Printf.sprintf "message %d->%d dropped on edge %d" src dst edge
    | Crashed { node } -> Printf.sprintf "crash of node %d" node
    | Restarted { node } -> Printf.sprintf "restart of node %d" node
    | Cut { edge } -> Printf.sprintf "outage of edge %d" edge
    | Restored { edge } -> Printf.sprintf "edge %d restored" edge
  in
  Printf.sprintf "round %d: %s" ev.round what

let sink_event ev =
  let fault, node, edge =
    match ev.kind with
    | Dropped { edge; src; dst = _ } -> ("dropped", src, edge)
    | Crashed { node } -> ("crashed", node, -1)
    | Restarted { node } -> ("restarted", node, -1)
    | Cut { edge } -> ("cut", -1, edge)
    | Restored { edge } -> ("restored", -1, edge)
  in
  {
    Sink.name = "runtime.fault";
    id = 0;
    parent = 0;
    payload = Sink.Fault { round = ev.round; fault; node; edge };
    attrs = [];
  }
