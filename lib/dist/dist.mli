(** Distributed execution of the strategy, emulated with explicit rounds.

    The paper claims the extended-nibble strategy can be executed by the
    tree network itself in time
    [O(|X| · |P ∪ B| · log(degree(T)) + height(T))], with the per-object
    computations pipelined along the tree. This module emulates that
    execution synchronously — messages travel one edge per round — and
    counts rounds, messages, and the busiest node's total work, so that
    experiment E9 can check the claimed shape and the tests can check that
    the distributed computation reproduces the sequential placement
    exactly.

    The nibble step is emulated at full message granularity: a pipelined
    convergecast aggregates per-object subtree weights (object [x]'s wave
    starts at round [x], so all waves finish in [height + |X|] rounds), a
    pipelined broadcast distributes totals and the elected gravity
    centers, and every node then decides locally which copies it holds.
    Steps 2 and 3 are level-synchronized like the sequential code; their
    round count is bounded by the component heights and [2·height], and
    per-node work is accounted as [copies moved × ⌈log₂ degree⌉]. *)

module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement

type stats = {
  rounds : int;  (** synchronous communication rounds *)
  messages : int;  (** total point-to-point messages *)
  max_node_work : int;  (** busiest node's accumulated work units *)
}

val nibble_rounds : Workload.t -> (int list array * stats)
(** Emulates the distributed nibble computation; returns the per-object
    copy sets (as decided locally by each node) and the cost. The test
    suite asserts the copy sets equal {!Hbn_nibble.Nibble.place_all}'s. *)

val strategy_rounds : Workload.t -> Placement.t * stats
(** Emulates the full pipeline (nibble + deletion + mapping) and returns
    the final placement — identical to the sequential
    {!Hbn_core.Strategy.run} — together with the distributed cost model:
    nibble rounds, one wave per object for deletion, and [2·height]
    mapping rounds, with heap-based [⌈log₂ degree⌉] work per copy
    movement. *)

(** {1 Execution under injected faults} *)

type fault_report =
  | Recovered of {
      placement : Placement.t;
          (** equals {!Hbn_core.Strategy.run}'s placement *)
      emulated : stats;  (** fault-free cost model of the full pipeline *)
      nibble : Dist_nibble.robust_stats;  (** the actual hardened run *)
      log : Faults.event list;
      health : Hbn_obs.Monitor.verdict option;
          (** end-of-run drift verdict; [None] without a monitor *)
    }
  | Degraded of {
      reason : [ `Round_limit | `Undecided | `Diverged ];
      partial : int list array;  (** per-object copy sets decided so far *)
      nibble : Dist_nibble.robust_stats;
      log : Faults.event list;
      health : Hbn_obs.Monitor.verdict option;
    }

val run_with_faults :
  ?max_rounds:int ->
  ?timeout:int ->
  ?faults:Faults.plan ->
  ?telemetry:Hbn_obs.Telemetry.t ->
  ?monitor:Hbn_obs.Monitor.t ->
  ?link:Hbn_event.Link.config ->
  Workload.t ->
  fault_report
(** Runs the hardened distributed nibble ({!Dist_nibble.run_robust})
    under the plan and verifies the recovered copy sets against the
    sequential {!Hbn_nibble.Nibble.place_all}. On agreement the rest of
    the strategy proceeds as in the fault-free emulation and the report
    is [Recovered] with the centralized placement; any other ending —
    round budget exhausted, permanently crashed node, or (would be a
    bug) divergence — is a structured [Degraded]. Never raises on
    faults. [telemetry], [monitor] and [link] are passed through to the
    hardened run ({!Dist_nibble.run_robust}) so the recovery's
    round-by-round message and retransmission pressure lands in the
    collector, the monitor turns it into alerts and the [health] field,
    and the recovery can be measured on asymmetric per-level links. *)
