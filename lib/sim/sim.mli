(** Store-and-forward packet simulator for hierarchical bus networks.

    The paper motivates congestion as the objective because network
    throughput is governed by it (its [8], an experimental SPAA'99 study
    on SCI clusters, shows application run time tracking the congestion of
    the data management strategy). The authors' hardware is not available,
    so this module substitutes a synchronous store-and-forward simulator
    of the same tree-of-buses model — experiment E10 uses it to reproduce
    the qualitative claim on synthetic traffic (see DESIGN.md §4).

    Traffic: every read request becomes a packet traversing the unique
    path from the requesting processor to its reference copy (SCI
    request-response transactions collapse into one packet, exactly as in
    the paper's Figure 1→2 argument); every write becomes a packet to the
    reference copy followed by a multicast over the Steiner tree of the
    copy set, whose first hops wait for the request to arrive.

    Mechanics: per round, an edge [e] transmits at most [b(e)] packets and
    the packet-hops on edges incident to a bus [B] are limited to
    [2·b(B)]. The factor 2 is paper-derived, not a fudge: the paper's
    bus load is [L(B) = (Σ_{e incident to B} L(e)) / (2·b(B))] — a
    message crossing a bus occupies two of its incident edges (it enters
    on one and leaves on the other), so a bus of bandwidth [b(B)] that
    forwards [b(B)] messages per round performs [2·b(B)] packet-hops on
    its incident edges. Capping at [1·b(B)] packet-hops would halve the
    simulated bus throughput relative to the load definition the
    congestion objective optimizes, skewing the congestion→makespan
    correspondence the simulator exists to measure. The unit test
    [bus capacity: the 2·b(B) cap permits full pipelining] pins the
    constant. Scheduling is greedy FIFO and deterministic. Every
    transmission moves one hop per round (store-and-forward). With all
    bandwidths 1 this is the standard [Ω(congestion + dilation)] routing
    regime.

    Asynchrony: the round machine is driven by the deterministic
    discrete-event engine ({!Hbn_event.Engine}). With a
    {!Hbn_event.Link.config} each tree level gets its own propagation
    delay and bandwidth: a granted hop occupies its edge's transmitter
    and arrives [bytes/B + D] virtual time later, per-edge service
    becomes a token bucket of [B] packets per tick (burstable to one
    tick's budget), and the allocator only wakes at ticks where work can
    exist. Without a link — or under {!Hbn_event.Link.sync} (delay 1,
    infinite bandwidth) — every latency is exactly 1 tick and every
    budget equals the static caps, and the schedule is bit-identical to
    the synchronous engine above (DESIGN.md §14 states the equivalence;
    the test suite pins it).

    With [scale = 1] the simulator performs exactly one transmission per
    unit of analytic load, so its per-edge traffic equals
    {!Hbn_placement.Placement.edge_loads} — a consistency check the test
    suite exploits. *)

module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement

type outcome = {
  makespan : int;
      (** allocator ticks executed — under the synchronous regime,
          rounds until every packet is delivered *)
  completion : float;
      (** virtual time at which the last hop finished its transit — the
          asynchronous makespan (0 with no traffic). Under the
          synchronous regime every hop takes exactly one tick, so the
          last grant at tick [makespan] lands at [makespan + 1]; with
          per-level links this is the quantity that varies with
          bandwidth asymmetry while [edge_traffic] (congestion) stays
          fixed *)
  packets : int;  (** messages injected (multicasts count once) *)
  transmissions : int;  (** total edge traversals *)
  edge_traffic : int array;  (** traversals per edge *)
  max_dilation : int;  (** longest dependency chain over all packets *)
  health : Hbn_obs.Monitor.verdict option;
      (** end-of-run drift verdict; [None] without a monitor *)
}

type policy =
  | Fifo  (** serve ready hops oldest-first (default) *)
  | Round_robin  (** rotate the service order every round *)
  | Reversed  (** youngest-first — the most unfair work-conserving order *)

val run :
  ?scale:int ->
  ?policy:policy ->
  ?telemetry:Hbn_obs.Telemetry.t ->
  ?monitor:Hbn_obs.Monitor.t ->
  ?link:Hbn_event.Link.config ->
  Workload.t ->
  Placement.t ->
  outcome
(** Simulates the workload under the placement. [scale] divides all
    frequencies (rounding up) to bound simulation cost on large workloads;
    default 1. [policy] picks the service order of ready transmissions —
    every policy is work-conserving, and experiment E16 shows the makespan
    (and hence the congestion-predicts-performance conclusion of E10) is
    robust to the choice.

    [link] gives every tree level its own delay and bandwidth (see
    {!Hbn_event.Link}); omitting it — or passing {!Hbn_event.Link.sync} —
    yields the synchronous store-and-forward schedule, bit for bit.
    The traffic itself ([packets], [transmissions], [edge_traffic],
    [max_dilation]) is a function of workload and placement alone and
    never varies with [link]; only the schedule ([makespan],
    [completion], telemetry) does.

    [telemetry] records one {!Hbn_obs.Telemetry} sample per simulated
    round into a fresh caller-owned collector: each hop transmitted in
    the round is one delivered send of one byte-unit over its edge
    (store-and-forward moves one packet one edge per round), nothing is
    ever dropped, and all nodes are live. The per-edge top-k series is
    the congestion-over-time profile of the schedule. Recording never
    changes the schedule.

    [monitor] feeds the (folded) telemetry series through the
    caller-owned {!Hbn_obs.Monitor} at end of run and fills
    [outcome.health]; with no [telemetry] collector a private one is
    recorded into just for the monitor. Monitoring never changes the
    schedule either.

    When {!Hbn_obs.Trace} is enabled the run is wrapped in a [sim.run]
    span, every round streams the [sim.queue_depth] and
    [sim.round_transmissions] gauges (ready hops after the round;
    hops delivered in it), a final ["sim.outcome"] event records
    makespan/packets/transmissions/dilation, and the [sim.packets] /
    [sim.transmissions] counters are bumped. Tracing never changes the
    simulated schedule. *)

val lower_bound : Workload.t -> Placement.t -> outcome -> float
(** [max(congestion, dilation)] for the simulated traffic — no schedule
    can beat it; used to sanity-check simulator results. *)
