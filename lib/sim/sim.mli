(** Store-and-forward packet simulator for hierarchical bus networks.

    The paper motivates congestion as the objective because network
    throughput is governed by it (its [8], an experimental SPAA'99 study
    on SCI clusters, shows application run time tracking the congestion of
    the data management strategy). The authors' hardware is not available,
    so this module substitutes a synchronous store-and-forward simulator
    of the same tree-of-buses model — experiment E10 uses it to reproduce
    the qualitative claim on synthetic traffic (see DESIGN.md §4).

    Traffic: every read request becomes a packet traversing the unique
    path from the requesting processor to its reference copy (SCI
    request-response transactions collapse into one packet, exactly as in
    the paper's Figure 1→2 argument); every write becomes a packet to the
    reference copy followed by a multicast over the Steiner tree of the
    copy set, whose first hops wait for the request to arrive.

    Mechanics: per round, an edge [e] transmits at most [b(e)] packets and
    the packet-hops on edges incident to a bus [B] are limited to
    [2·b(B)] (matching the bus-load definition, which charges each
    crossing message to two incident edges). Scheduling is greedy FIFO and
    deterministic. Every transmission moves one hop per round
    (store-and-forward). With all bandwidths 1 this is the standard
    [Ω(congestion + dilation)] routing regime.

    With [scale = 1] the simulator performs exactly one transmission per
    unit of analytic load, so its per-edge traffic equals
    {!Hbn_placement.Placement.edge_loads} — a consistency check the test
    suite exploits. *)

module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement

type outcome = {
  makespan : int;  (** rounds until every packet is delivered *)
  packets : int;  (** messages injected (multicasts count once) *)
  transmissions : int;  (** total edge traversals *)
  edge_traffic : int array;  (** traversals per edge *)
  max_dilation : int;  (** longest dependency chain over all packets *)
}

type policy =
  | Fifo  (** serve ready hops oldest-first (default) *)
  | Round_robin  (** rotate the service order every round *)
  | Reversed  (** youngest-first — the most unfair work-conserving order *)

val run :
  ?scale:int ->
  ?policy:policy ->
  ?telemetry:Hbn_obs.Telemetry.t ->
  Workload.t ->
  Placement.t ->
  outcome
(** Simulates the workload under the placement. [scale] divides all
    frequencies (rounding up) to bound simulation cost on large workloads;
    default 1. [policy] picks the service order of ready transmissions —
    every policy is work-conserving, and experiment E16 shows the makespan
    (and hence the congestion-predicts-performance conclusion of E10) is
    robust to the choice.

    [telemetry] records one {!Hbn_obs.Telemetry} sample per simulated
    round into a fresh caller-owned collector: each hop transmitted in
    the round is one delivered send of one byte-unit over its edge
    (store-and-forward moves one packet one edge per round), nothing is
    ever dropped, and all nodes are live. The per-edge top-k series is
    the congestion-over-time profile of the schedule. Recording never
    changes the schedule.

    When {!Hbn_obs.Trace} is enabled the run is wrapped in a [sim.run]
    span, every round streams the [sim.queue_depth] and
    [sim.round_transmissions] gauges (ready hops after the round;
    hops delivered in it), a final ["sim.outcome"] event records
    makespan/packets/transmissions/dilation, and the [sim.packets] /
    [sim.transmissions] counters are bumped. Tracing never changes the
    simulated schedule. *)

val lower_bound : Workload.t -> Placement.t -> outcome -> float
(** [max(congestion, dilation)] for the simulated traffic — no schedule
    can beat it; used to sanity-check simulator results. *)
