module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Trace = Hbn_obs.Trace
module Sink = Hbn_obs.Sink
module Telemetry = Hbn_obs.Telemetry
module Monitor = Hbn_obs.Monitor
module Engine = Hbn_event.Engine
module Link = Hbn_event.Link

type outcome = {
  makespan : int;
  completion : float;
  packets : int;
  transmissions : int;
  edge_traffic : int array;
  max_dilation : int;
  health : Monitor.verdict option;
}

(* One edge traversal of one packet. [dep] is the index (into the global
   transmission array) of the traversal that must complete first, or -1. *)
type hop = { edge : int; dep : int }

let scale_up amount scale = if amount = 0 then 0 else ((amount - 1) / scale) + 1

type policy = Fifo | Round_robin | Reversed

let run ?(scale = 1) ?(policy = Fifo) ?telemetry ?monitor ?link w placement =
  if scale < 1 then invalid_arg "Sim.run: scale must be >= 1";
  let sp_run = Trace.span "sim.run" in
  let tree = Workload.tree w in
  (* As in Runtime.run_core: a monitor with no caller-owned collector
     records into a private one just for the end-of-run ingest. *)
  let telemetry =
    match (telemetry, monitor) with
    | None, Some _ ->
      Some (Telemetry.create ~num_edges:(Tree.num_edges tree) ())
    | _ -> telemetry
  in
  let m = max 1 (Tree.num_edges tree) in
  let hops_rev = ref [] in
  let count = ref 0 in
  let packets = ref 0 in
  let push edge dep =
    hops_rev := { edge; dep } :: !hops_rev;
    incr count;
    !count - 1
  in
  let add_unicast ~from ~target =
    let last = ref (-1) in
    List.iter
      (fun edge -> last := push edge !last)
      (Tree.path_edges tree from target);
    !last
  in
  (* Multicast from [source] over the Steiner tree of [nodes], gated on
     [dep]: BFS orientation away from the source. *)
  let add_multicast ~source ~nodes ~dep =
    let steiner = Tree.steiner_edges tree nodes in
    if steiner <> [] then begin
      let incident = Hashtbl.create 16 in
      List.iter
        (fun e ->
          let u, v = Tree.edge_endpoints tree e in
          Hashtbl.replace incident u
            (e :: (try Hashtbl.find incident u with Not_found -> []));
          Hashtbl.replace incident v
            (e :: (try Hashtbl.find incident v with Not_found -> [])))
        steiner;
      let visited_edge = Hashtbl.create 16 in
      let queue = Queue.create () in
      Queue.add (source, dep) queue;
      while not (Queue.is_empty queue) do
        let node, d = Queue.pop queue in
        List.iter
          (fun e ->
            if not (Hashtbl.mem visited_edge e) then begin
              Hashtbl.add visited_edge e ();
              let u, v = Tree.edge_endpoints tree e in
              let next = if u = node then v else u in
              let idx = push e d in
              Queue.add (next, idx) queue
            end)
          (try Hashtbl.find incident node with Not_found -> [])
      done
    end
  in
  Array.iteri
    (fun _obj (op : Placement.obj_placement) ->
      List.iter
        (fun (a : Placement.assignment) ->
          let reads = scale_up a.Placement.reads scale in
          let writes = scale_up a.Placement.writes scale in
          for _ = 1 to reads do
            incr packets;
            ignore (add_unicast ~from:a.Placement.leaf ~target:a.Placement.server)
          done;
          for _ = 1 to writes do
            incr packets;
            let arrival =
              add_unicast ~from:a.Placement.leaf ~target:a.Placement.server
            in
            add_multicast ~source:a.Placement.server ~nodes:op.Placement.copies
              ~dep:arrival
          done)
        op.Placement.assigns)
    placement;
  let hops = Array.of_list (List.rev !hops_rev) in
  let n_hops = Array.length hops in
  let edge_traffic = Array.make m 0 in
  Array.iter (fun h -> edge_traffic.(h.edge) <- edge_traffic.(h.edge) + 1) hops;
  (* Dependency depth = packet dilation. *)
  let depth = Array.make (max 1 n_hops) 0 in
  let max_dilation = ref 0 in
  Array.iteri
    (fun i h ->
      depth.(i) <- (if h.dep >= 0 then depth.(h.dep) + 1 else 1);
      if depth.(i) > !max_dilation then max_dilation := depth.(i))
    hops;
  (* Event-driven greedy scheduling over virtual time. The allocator
     wakes at integer ticks of the {!Hbn_event.Engine} and serves the
     ready hops under per-tick capacity; a granted hop occupies its link
     for [Link.latency] virtual time and its dependents become eligible
     at the first tick after arrival. Without a link model (or under
     [Link.sync]) every latency is exactly 1 and every per-tick budget
     equals the static caps, so ticks are the synchronous rounds of the
     original engine, bit for bit. *)
  let attached = Option.map (fun c -> Link.attach c tree) link in
  let edge_cap = Array.init m (fun e ->
      if Tree.num_edges tree = 0 then 1 else Tree.edge_bandwidth tree e)
  in
  (* Per-edge service rate in packets per tick: the static SCI width
     [b(e)] in the synchronous regime (bandwidth "inf"), overridden by
     the level's finite bandwidth otherwise. Credits accumulate across
     ticks up to one tick's burst — with an integral rate that reduces
     exactly to the per-round cap of the synchronous engine. *)
  let rate = Array.init m (fun e ->
      match attached with
      | None -> float_of_int edge_cap.(e)
      | Some l ->
        let b = Link.bandwidth (Link.config l) ~level:(Link.edge_level l e) in
        if b = Float.infinity then float_of_int edge_cap.(e) else b)
  in
  let burst = Array.map (fun r -> Float.max r 1.) rate in
  let hop_latency = Array.init m (fun e ->
      match attached with
      | None -> 1.
      | Some l -> Link.latency l ~edge:e ~bytes:1)
  in
  let bus_cap = Array.make (Tree.n tree) 0 in
  List.iter (fun b -> bus_cap.(b) <- 2 * Tree.bus_bandwidth tree b) (Tree.buses tree);
  let is_bus = Array.init (Tree.n tree) (fun v -> not (Tree.is_leaf tree v)) in
  let credit = Array.make m 0. in
  let bus_left = Array.make (Tree.n tree) 0 in
  let frontier = ref [] in
  (* Hops whose dependency is already done enter the frontier in index
     order (FIFO by injection). *)
  let blocked_children = Array.make (max 1 n_hops) [] in
  for i = n_hops - 1 downto 0 do
    let h = hops.(i) in
    if h.dep < 0 then frontier := i :: !frontier
    else blocked_children.(h.dep) <- i :: blocked_children.(h.dep)
  done;
  let remaining = ref n_hops in
  let rounds = ref 0 in
  let completion = ref 0. in
  let engine = Engine.create () in
  (* Arrivals (rank 0) land before the tick (rank 1) they enable, so a
     tick always sees every hop whose dependency cleared by its time. *)
  let newly = ref [] in
  let tick_scheduled = Hashtbl.create 64 in
  let last_tick = ref 0. in
  let rec ensure_tick time =
    if not (Hashtbl.mem tick_scheduled time) then begin
      Hashtbl.add tick_scheduled time ();
      Engine.at engine ~rank:1 ~time tick
    end
  and tick () =
    let now = Engine.now engine in
    incr rounds;
    (match telemetry with
    | None -> ()
    | Some tel ->
      Telemetry.begin_round ~vtime:now tel ~round:(int_of_float now));
    let remaining_before = !remaining in
    let dt = now -. !last_tick in
    last_tick := now;
    for e = 0 to m - 1 do
      credit.(e) <- Float.min (credit.(e) +. (rate.(e) *. dt)) burst.(e)
    done;
    Array.iteri (fun v c -> bus_left.(v) <- c) bus_cap;
    frontier := !frontier @ List.sort compare !newly;
    newly := [];
    let next = ref [] in
    let enabled = ref 0 in
    let scheduled =
      (* The scheduling policy permutes the service order of the ready
         hops; any order is work-conserving, experiment E16 measures how
         little it matters. *)
      match policy with
      | Fifo -> !frontier
      | Reversed -> List.rev !frontier
      | Round_robin ->
        let len = List.length !frontier in
        if len = 0 then []
        else begin
          let k = !rounds mod len in
          (* Rotate the frontier by k positions. *)
          let rec split i acc = function
            | rest when i = k -> rest @ List.rev acc
            | x :: rest -> split (i + 1) (x :: acc) rest
            | [] -> List.rev acc
          in
          split 0 [] !frontier
        end
    in
    List.iter
      (fun i ->
        let h = hops.(i) in
        let u, v = Tree.edge_endpoints tree h.edge in
        let bus_ok b = (not is_bus.(b)) || bus_left.(b) > 0 in
        if credit.(h.edge) >= 1. && bus_ok u && bus_ok v then begin
          (match telemetry with
          | None -> ()
          | Some tel -> Telemetry.send tel ~edge:h.edge ~bytes:1);
          credit.(h.edge) <- credit.(h.edge) -. 1.;
          if is_bus.(u) then bus_left.(u) <- bus_left.(u) - 1;
          if is_bus.(v) then bus_left.(v) <- bus_left.(v) - 1;
          decr remaining;
          let arrival = now +. hop_latency.(h.edge) in
          if arrival > !completion then completion := arrival;
          (* Children become ready at the first tick after the hop has
             fully arrived (store-and-forward: next round under sync). *)
          (match blocked_children.(i) with
          | [] -> ()
          | children ->
            enabled := !enabled + List.length children;
            ensure_tick (Float.ceil arrival);
            Engine.at engine ~time:arrival (fun () ->
                List.iter (fun c -> newly := c :: !newly) children))
        end
        else next := i :: !next)
      scheduled;
    frontier := List.rev !next;
    if !frontier <> [] then ensure_tick (now +. 1.);
    (match telemetry with
    | None -> ()
    | Some tel -> Telemetry.end_round tel ~live_nodes:(Tree.n tree));
    if Trace.enabled () then begin
      Trace.gauge "sim.queue_depth"
        (float_of_int (List.length !frontier + !enabled));
      Trace.gauge "sim.round_transmissions"
        (float_of_int (remaining_before - !remaining))
    end
  in
  if n_hops > 0 then ensure_tick 1.;
  Engine.drain engine;
  assert (!remaining = 0);
  let health =
    Option.map
      (fun mon ->
        (match telemetry with
        | Some tel -> Monitor.ingest mon tel
        | None -> ());
        Monitor.health mon)
      monitor
  in
  let outcome =
    {
      makespan = !rounds;
      completion = !completion;
      packets = !packets;
      transmissions = n_hops;
      edge_traffic;
      max_dilation = !max_dilation;
      health;
    }
  in
  if Trace.enabled () then begin
    Trace.count ~by:outcome.packets "sim.packets";
    Trace.count ~by:outcome.transmissions "sim.transmissions";
    Trace.event "sim.outcome"
      ~attrs:
        [
          ("makespan", Sink.Int outcome.makespan);
          ("packets", Sink.Int outcome.packets);
          ("transmissions", Sink.Int outcome.transmissions);
          ("max_dilation", Sink.Int outcome.max_dilation);
          ("scale", Sink.Int scale);
        ];
    Trace.finish sp_run
      ~attrs:
        [
          ("makespan", Sink.Int outcome.makespan);
          ("packets", Sink.Int outcome.packets);
        ]
  end;
  outcome

let lower_bound w _placement outcome =
  let tree = Workload.tree w in
  let cong =
    (Placement.congestion_of_edge_loads tree outcome.edge_traffic)
      .Placement.value
  in
  Float.max cong (float_of_int outcome.max_dilation)
