module Partition = Hbn_workload.Partition

let achievable_sums = Partition.achievable_sums

let family_optimum i =
  let k =
    match Partition.half i with
    | Some k -> k
    | None -> invalid_arg "Gadget_opt.family_optimum: odd item sum"
  in
  let reachable = achievable_sums i in
  let best = ref max_int in
  Array.iteri
    (fun sigma ok ->
      if ok then begin
        let c =
          max (4 * k) (max ((2 * k) + (2 * sigma)) ((6 * k) - (2 * sigma)))
        in
        if c < !best then best := c
      end)
    reachable;
  !best
