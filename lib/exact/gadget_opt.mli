(** Closed-form optimum for the Theorem 2.1 reduction gadget.

    Within the proof's canonical placement family — object [y] on
    processor [a], each item object [x_i] on [s] or [s̄] — the edge loads
    are (with [σ] the item weight placed on [s]):
    [L(e_a) = L(e_b) = 4k], [L(e_s) = 2k + 2σ], [L(e_s̄) = 6k − 2σ],
    so the family's optimal congestion is
    [min_{σ achievable} max(4k, 2k + 2σ, 6k − 2σ)], computable by the
    subset-sum DP. The proof of Theorem 2.1 shows no placement beats the
    family, so this equals the true optimum: it is [4k] iff some subset
    sums to [k]. Experiment E2 cross-checks the formula against the
    brute-force solver on small instances. *)

val family_optimum : Hbn_workload.Partition.instance -> int
(** The canonical-family optimum (= the true optimal congestion). Raises
    [Invalid_argument] on instances with odd sums. *)

val achievable_sums : Hbn_workload.Partition.instance -> bool array
(** [achievable_sums i] has index [σ] true iff some subset of the items
    sums to [σ] (the subset-sum DP used by {!family_optimum}). *)
