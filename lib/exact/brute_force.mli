(** Exact optimal placements for small instances.

    The congestion couples objects only through per-edge load sums, so the
    optimum factorizes: enumerate, per object, the Pareto-minimal
    edge-load vectors over all copy sets and reference assignments, then
    search the cross product with branch-and-bound. This makes the true
    optimum computable for the instance sizes used by experiments E2, E3
    and E7 (up to roughly 6 processors and a handful of objects).

    Candidate copy locations select the model: [`Leaves] is the paper's
    hierarchical bus network (copies on processors only), [`All_nodes] is
    the tree model of [MMVW97] that the nibble strategy solves optimally —
    comparing the two quantifies the price of the bus restriction. *)

module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement

type candidates = [ `Leaves | `All_nodes ]

exception Too_large of string
(** Raised when the enumeration would exceed the safety budget. *)

val object_vectors :
  ?budget:int -> Workload.t -> obj:int -> candidates:candidates ->
  int array list
(** Pareto-minimal edge-load vectors of one object over every nonempty
    copy set and every (strict, per-processor) reference assignment. An
    object without requests yields the single all-zero vector. [budget]
    bounds the number of enumerated configurations (default [2_000_000]). *)

type optimum = {
  congestion : float;
  edge_loads : int array;  (** loads of one optimal configuration *)
}

val optimum :
  ?budget:int ->
  ?upper_bound:float ->
  Workload.t ->
  candidates:candidates ->
  optimum
(** The exact optimal congestion. [upper_bound] (e.g. the congestion of a
    known placement) accelerates pruning but never changes the result. *)

val min_total_load :
  ?budget:int -> Workload.t -> candidates:candidates -> optimum
(** The placement minimizing the {e total communication load}
    [Σ_e L(e)] — the objective the paper's introduction argues against.
    The total decomposes per object, so this is exact and cheap; the
    returned [congestion] is the congestion that the total-load-optimal
    placement {e suffers}, which experiment E15 compares against the true
    congestion optimum to reproduce the "bottleneck" motivation. *)

val min_edge_loads :
  ?budget:int -> Workload.t -> candidates:candidates -> int array
(** Per-edge minima: for each edge, the minimum load achievable by {e any}
    placement (optimizing each edge separately). Theorem 3.1 asserts the
    nibble placement attains all of them simultaneously when
    [candidates = `All_nodes]. *)
