(** Lower bounds on the optimal congestion of a hierarchical bus network.

    Used to certify approximation ratios on instances too large for
    {!Brute_force}. All bounds are valid for the bus model (copies on
    processors only). *)

module Workload = Hbn_workload.Workload

val nibble : Workload.t -> float
(** The congestion of the nibble placement. By Theorem 3.1 the nibble
    placement minimizes every edge load (and hence every bus load)
    simultaneously in the more permissive tree model, so its congestion
    lower-bounds the bus-model optimum. *)

val single_object : Workload.t -> float
(** The case analysis from the proof of Theorem 4.3, made per-object: any
    placement of object [x] either uses at least two copies — then every
    write updates every copy, so each copy's unit processor switch carries
    at least [κ_x] — or one copy on some processor [l], whose switch then
    carries all requests of the other processors,
    [h_x − h_x(l) ≥ h_x − max_P h_x(P)]. Hence
    [C_opt ≥ max_x min(κ_x, h_x − max_P h_x(P))]. *)

val combined : Workload.t -> float
(** [max] of the above — the bound the experiments report as "LB". *)
