module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement

type candidates = [ `Leaves | `All_nodes ]

exception Too_large of string

let default_budget = 2_000_000

let dominates a b =
  (* a <= b pointwise *)
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let pareto_insert kept vec =
  if List.exists (fun v -> dominates v vec) !kept then ()
  else kept := vec :: List.filter (fun v -> not (dominates vec v)) !kept

let candidate_nodes tree = function
  | `Leaves -> Tree.leaves tree
  | `All_nodes -> List.init (Tree.n tree) (fun v -> v)

let object_vectors ?(budget = default_budget) w ~obj ~candidates =
  let tree = Workload.tree w in
  let m = max 1 (Tree.num_edges tree) in
  let leaves = Array.of_list (Workload.requesting_leaves w ~obj) in
  let nl = Array.length leaves in
  if nl = 0 then [ Array.make m 0 ]
  else begin
    let cand = Array.of_list (candidate_nodes tree candidates) in
    let nc = Array.length cand in
    if nc > 20 then raise (Too_large "more than 20 candidate nodes");
    let kappa = Workload.write_contention w ~obj in
    (* Path edge lists between every requesting leaf and every candidate. *)
    let paths =
      Array.init nl (fun i ->
          Array.init nc (fun j -> Tree.path_edges tree leaves.(i) cand.(j)))
    in
    let weights =
      Array.map (fun leaf -> Workload.weight w ~obj leaf) leaves
    in
    let kept = ref [] in
    let enumerated = ref 0 in
    for mask = 1 to (1 lsl nc) - 1 do
      (* Copy set = candidates selected by the mask. *)
      let px = ref [] in
      for j = nc - 1 downto 0 do
        if mask land (1 lsl j) <> 0 then px := j :: !px
      done;
      let px = Array.of_list !px in
      let k = Array.length px in
      let base = Array.make m 0 in
      if kappa > 0 then
        List.iter
          (fun e -> base.(e) <- base.(e) + kappa)
          (Tree.steiner_edges tree
             (Array.to_list (Array.map (fun j -> cand.(j)) px)));
      (* Every assignment of the nl requesting leaves to the k copies. *)
      let assign = Array.make nl 0 in
      let continue = ref true in
      while !continue do
        incr enumerated;
        if !enumerated > budget then
          raise (Too_large "assignment enumeration budget exceeded");
        let vec = Array.copy base in
        for i = 0 to nl - 1 do
          List.iter
            (fun e -> vec.(e) <- vec.(e) + weights.(i))
            paths.(i).(px.(assign.(i)))
        done;
        pareto_insert kept vec;
        (* Odometer increment. *)
        let rec bump i =
          if i >= nl then continue := false
          else if assign.(i) + 1 < k then assign.(i) <- assign.(i) + 1
          else begin
            assign.(i) <- 0;
            bump (i + 1)
          end
        in
        bump 0
      done
    done;
    !kept
  end

type optimum = { congestion : float; edge_loads : int array }

let congestion_value tree loads =
  (Placement.congestion_of_edge_loads tree loads).Placement.value

let optimum ?(budget = default_budget) ?upper_bound w ~candidates =
  let tree = Workload.tree w in
  let m = max 1 (Tree.num_edges tree) in
  let nobj = Workload.num_objects w in
  let vectors =
    Array.init nobj (fun obj ->
        let vs = object_vectors ~budget w ~obj ~candidates in
        (* Try low-congestion vectors first for early good incumbents. *)
        List.sort
          (fun a b -> compare (congestion_value tree a) (congestion_value tree b))
          vs
        |> Array.of_list)
  in
  (* Suffix minima per edge: a lower bound on what objects i.. must add. *)
  let suffix = Array.make_matrix (nobj + 1) m 0 in
  for i = nobj - 1 downto 0 do
    for e = 0 to m - 1 do
      let best = ref max_int in
      Array.iter (fun v -> if v.(e) < !best then best := v.(e)) vectors.(i);
      suffix.(i).(e) <- suffix.(i + 1).(e) + if !best = max_int then 0 else !best
    done
  done;
  let best = ref (match upper_bound with Some u -> u +. 1e-9 | None -> infinity) in
  let best_loads = ref None in
  let partial = Array.make m 0 in
  let scratch = Array.make m 0 in
  let rec search i =
    for e = 0 to m - 1 do
      scratch.(e) <- partial.(e) + suffix.(i).(e)
    done;
    let bound = congestion_value tree scratch in
    if bound < !best -. 1e-12 then begin
      if i = nobj then begin
        best := bound;
        best_loads := Some (Array.copy scratch)
      end
      else
        Array.iter
          (fun v ->
            for e = 0 to m - 1 do
              partial.(e) <- partial.(e) + v.(e)
            done;
            search (i + 1);
            for e = 0 to m - 1 do
              partial.(e) <- partial.(e) - v.(e)
            done)
          vectors.(i)
    end
  in
  search 0;
  match !best_loads with
  | Some loads -> { congestion = !best; edge_loads = loads }
  | None ->
    (* Unreachable when upper_bound really is achievable: the search
       accepts configurations matching it thanks to the +1e-9 slack. *)
    failwith "Brute_force.optimum: upper_bound below the true optimum"

let min_total_load ?(budget = default_budget) w ~candidates =
  let tree = Workload.tree w in
  let m = max 1 (Tree.num_edges tree) in
  let loads = Array.make m 0 in
  for obj = 0 to Workload.num_objects w - 1 do
    let vs = object_vectors ~budget w ~obj ~candidates in
    (* The total decomposes over objects; a per-object sum minimizer
       survives Pareto filtering (anything dominating it has an equal or
       smaller sum). *)
    let best = ref None in
    List.iter
      (fun v ->
        let s = Array.fold_left ( + ) 0 v in
        match !best with
        | Some (s0, _) when s0 <= s -> ()
        | _ -> best := Some (s, v))
      vs;
    match !best with
    | Some (_, v) -> Array.iteri (fun e l -> loads.(e) <- loads.(e) + l) v
    | None -> ()
  done;
  { congestion = congestion_value tree loads; edge_loads = loads }

let min_edge_loads ?(budget = default_budget) w ~candidates =
  let tree = Workload.tree w in
  let m = max 1 (Tree.num_edges tree) in
  let mins = Array.make m 0 in
  for obj = 0 to Workload.num_objects w - 1 do
    let vs = object_vectors ~budget w ~obj ~candidates in
    for e = 0 to m - 1 do
      let best = ref max_int in
      List.iter (fun v -> if v.(e) < !best then best := v.(e)) vs;
      if !best < max_int then mins.(e) <- mins.(e) + !best
    done
  done;
  mins
