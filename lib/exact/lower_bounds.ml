module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Nibble = Hbn_nibble.Nibble

let nibble w = Placement.congestion w (Nibble.placement w)

let single_object w =
  let tree = Workload.tree w in
  let best = ref 0 in
  for obj = 0 to Workload.num_objects w - 1 do
    let kappa = Workload.write_contention w ~obj in
    if kappa > 0 then begin
      let heaviest = ref 0 and total = ref 0 in
      List.iter
        (fun leaf ->
          let h = Workload.weight w ~obj leaf in
          total := !total + h;
          if h > !heaviest then heaviest := h)
        (Tree.leaves tree);
      best := max !best (min kappa (!total - !heaviest))
    end
  done;
  float_of_int !best

let combined w = Float.max (nibble w) (single_object w)
