type layout = { slots_per_epoch : int }

let layout ~slots_per_epoch =
  if slots_per_epoch < 1 then
    invalid_arg "Epoch.layout: slots_per_epoch must be >= 1";
  { slots_per_epoch }

let check_slot name slot =
  if slot < 0 then invalid_arg ("Epoch." ^ name ^ ": negative slot")

let check_epoch name epoch =
  if epoch < 0 then invalid_arg ("Epoch." ^ name ^ ": negative epoch")

let epoch_of_slot l slot =
  check_slot "epoch_of_slot" slot;
  slot / l.slots_per_epoch

let slot_in_epoch l slot =
  check_slot "slot_in_epoch" slot;
  slot mod l.slots_per_epoch

let first_slot l ~epoch =
  check_epoch "first_slot" epoch;
  epoch * l.slots_per_epoch

let last_slot l ~epoch =
  check_epoch "last_slot" epoch;
  ((epoch + 1) * l.slots_per_epoch) - 1

let absolute l ~epoch ~slot =
  check_epoch "absolute" epoch;
  if slot < 0 || slot >= l.slots_per_epoch then
    invalid_arg "Epoch.absolute: slot outside the epoch";
  (epoch * l.slots_per_epoch) + slot

let is_boundary l slot = slot_in_epoch l slot = 0
