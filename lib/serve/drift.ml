module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Prng = Hbn_prng.Prng

type kind = Steady | Diurnal | Flash_crowd | Hotspot_migration

let kind_name = function
  | Steady -> "steady"
  | Diurnal -> "diurnal"
  | Flash_crowd -> "flash_crowd"
  | Hotspot_migration -> "hotspot_migration"

let kind_of_name = function
  | "steady" -> Some Steady
  | "diurnal" -> Some Diurnal
  | "flash_crowd" -> Some Flash_crowd
  | "hotspot_migration" -> Some Hotspot_migration
  | _ -> None

let all_kinds = [ Steady; Diurnal; Flash_crowd; Hotspot_migration ]

type t = {
  kind : kind;
  seed : int;
  tree : Tree.t;
  leaves : int array;
  objects : int;
  rate : int;
}

let create kind ~seed ~tree ~objects ~rate =
  if objects < 1 then invalid_arg "Drift.create: objects must be >= 1";
  if rate < 1 then invalid_arg "Drift.create: rate must be >= 1";
  let leaves = Tree.leaves_array tree in
  if Array.length leaves = 0 then
    invalid_arg "Drift.create: tree has no leaves";
  { kind; seed; tree; leaves; objects; rate }

let kind t = t.kind
let tree t = t.tree
let objects t = t.objects

let diurnal_period = 8
let flash_period = 8
let migration_dwell = 4

(* Hash-stream tags: one namespace per rate family so streams never
   collide across uses of the same seed. *)
let tag_read = 0
let tag_write = 1
let tag_flash = 2
let tag_jitter = 3

let hash_mod ~seed tags m =
  if m <= 0 then 0
  else
    let r = Int64.to_int (Int64.rem (Prng.hash ~seed tags) (Int64.of_int m)) in
    if r < 0 then r + m else r

let hmod t tags m = hash_mod ~seed:t.seed tags m

(* Epoch-independent base rates: reads in [1, rate], sparse writes in
   [0, max 1 (rate/4)] on roughly a third of the (leaf, object) pairs —
   enough write traffic that full replication never wins outright. *)
let base_read t ~obj ~li = 1 + hmod t [ tag_read; obj; li ] t.rate

let base_write t ~obj ~li =
  if hmod t [ tag_write; obj; li; 0 ] 3 = 0 then
    hmod t [ tag_write; obj; li; 1 ] (max 1 (t.rate / 4)) + 1
  else 0

let scale_round f x =
  if x <= 0 then 0 else int_of_float (floor ((f *. float_of_int x) +. 0.5))

(* Hotspot regions: four contiguous blocks of the leaves array. *)
let region t li = 4 * li / Array.length t.leaves

let hot_objects t = max 1 (t.objects / 4)

let rates t ~epoch ~obj ~li =
  let r = base_read t ~obj ~li and w = base_write t ~obj ~li in
  match t.kind with
  | Steady -> (r, w)
  | Diurnal ->
    let phase =
      2.0 *. Float.pi *. float_of_int (epoch mod diurnal_period)
      /. float_of_int diurnal_period
    in
    (max 1 (scale_round (1.0 +. (0.75 *. sin phase)) r), w)
  | Flash_crowd ->
    let cycle = epoch / flash_period and pos = epoch mod flash_period in
    let bursting = pos = 4 || pos = 5 in
    if bursting && obj = 0 && hmod t [ tag_flash; cycle; li ] 10 < 3 then
      (r + (6 * t.rate), w)
    else (r, w)
  | Hotspot_migration ->
    let home = epoch / migration_dwell mod 4 in
    if obj < hot_objects t then
      if region t li = home then ((8 * t.rate) + r, w)
      else (max 1 (r / 4), w)
    else (r, w)

let workload t ~epoch =
  if epoch < 0 then invalid_arg "Drift.workload: negative epoch";
  let n = Tree.n t.tree in
  let reads = Array.make_matrix t.objects n 0 in
  let writes = Array.make_matrix t.objects n 0 in
  Array.iteri
    (fun li leaf ->
      for obj = 0 to t.objects - 1 do
        let r, w = rates t ~epoch ~obj ~li in
        reads.(obj).(leaf) <- r;
        writes.(obj).(leaf) <- w
      done)
    t.leaves;
  Workload.make t.tree ~reads ~writes

let slot_jitter ~seed ~slot =
  if slot < 0 then invalid_arg "Drift.slot_jitter: negative slot";
  hash_mod ~seed [ tag_jitter; slot ] 3

let jitter t ~slot = slot_jitter ~seed:t.seed ~slot
