(** Epoch/slot arithmetic for the serving tier.

    The serving loop advances in fixed-width slots; [slots_per_epoch]
    consecutive slots form an epoch, and re-optimization decisions are
    taken only at epoch boundaries. The arithmetic is the standard
    fixed-layout scheme (the cardano-node [Slot] bookkeeping is the
    exemplar shape): slot numbers are absolute and non-negative, epoch
    [e] owns slots [e * slots_per_epoch .. (e + 1) * slots_per_epoch - 1],
    and epoch 0 starts at slot 0 — no off-by-one at either end. *)

type layout = private { slots_per_epoch : int }

val layout : slots_per_epoch:int -> layout
(** Raises [Invalid_argument] unless [slots_per_epoch >= 1]. *)

val epoch_of_slot : layout -> int -> int
(** The epoch owning an absolute slot. Raises [Invalid_argument] on a
    negative slot. *)

val slot_in_epoch : layout -> int -> int
(** Offset of an absolute slot within its epoch, in
    [0 .. slots_per_epoch - 1]. *)

val first_slot : layout -> epoch:int -> int
(** First absolute slot of the epoch. *)

val last_slot : layout -> epoch:int -> int
(** Last absolute slot of the epoch:
    [first_slot ~epoch:(epoch + 1) - 1]. *)

val absolute : layout -> epoch:int -> slot:int -> int
(** Absolute slot number of offset [slot] within [epoch]. Raises
    [Invalid_argument] unless [0 <= slot < slots_per_epoch]. *)

val is_boundary : layout -> int -> bool
(** Whether the absolute slot is the first of its epoch. *)
