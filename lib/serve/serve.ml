module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Prng = Hbn_prng.Prng
module Loads = Hbn_loads.Loads
module Attribution = Hbn_obs.Attribution
module Telemetry = Hbn_obs.Telemetry
module Monitor = Hbn_obs.Monitor
module Strategy = Hbn_core.Strategy

type config = {
  slots_per_epoch : int;
  epochs : int;
  top_k : int;
  budget_bytes : int;
  hysteresis : float;
  obj_size : int;
  msg_bytes : int;
  climb_iters : int;
  seed : int;
  oracle : bool;
  capacity : int;
}

let default =
  {
    slots_per_epoch = 16;
    epochs = 32;
    top_k = 4;
    budget_bytes = 4096;
    hysteresis = 0.5;
    obj_size = 64;
    msg_bytes = 32;
    climb_iters = 200;
    seed = 1;
    oracle = true;
    capacity = 512;
  }

type source = Generator of Drift.t | Tables of Workload.t array

type epoch_stats = {
  s_epoch : int;
  s_requests : int;
  s_congestion : float;
  s_stale : float;
  s_oracle : float;
  s_reoptimized : bool;
  s_bytes_migrated : int;
  s_replications : int;
  s_migrations : int;
  s_contractions : int;
  s_alerts : int;
}

type outcome = {
  epochs : epoch_stats list;
  total_requests : int;
  total_bytes_migrated : int;
  reoptimized_epochs : int;
  verdict : Monitor.verdict;
  alerts : Monitor.alert list;
  telemetry : Telemetry.t;
  monitor : Monitor.t;
  final_copies : int list array;
}

let validate cfg =
  if cfg.slots_per_epoch < 1 then
    invalid_arg "Serve.run: slots_per_epoch must be >= 1";
  if cfg.epochs < 1 then invalid_arg "Serve.run: epochs must be >= 1";
  if cfg.top_k < 1 then invalid_arg "Serve.run: top_k must be >= 1";
  if cfg.budget_bytes < 0 then invalid_arg "Serve.run: budget_bytes < 0";
  if not (cfg.hysteresis >= 0.0 && Float.is_finite cfg.hysteresis) then
    invalid_arg "Serve.run: hysteresis must be finite and >= 0";
  if cfg.obj_size < 1 then invalid_arg "Serve.run: obj_size must be >= 1";
  if cfg.msg_bytes < 1 then invalid_arg "Serve.run: msg_bytes must be >= 1";
  if cfg.climb_iters < 0 then invalid_arg "Serve.run: climb_iters < 0";
  if cfg.capacity < 2 then invalid_arg "Serve.run: capacity must be >= 2"

(* Alerts on the reconfiguration counters are the loop hearing its own
   footsteps; they never trigger the next re-optimization. *)
let reconfig_series = [ "replications"; "migrations"; "contractions" ]

let base_series name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let triggering a = not (List.mem (base_series a.Monitor.a_series) reconfig_series)

(* One copy on the heaviest requesting leaf — the same owner rule for
   the serving state and the stale baseline, so a late-appearing object
   never skews the comparison. *)
let bootstrap w copies =
  for obj = 0 to Workload.num_objects w - 1 do
    if copies.(obj) = [] then
      match Workload.requesting_leaves w ~obj with
      | [] -> ()
      | leaf :: _ as ls ->
        let best = ref leaf and best_w = ref (-1) in
        List.iter
          (fun l ->
            let h = Workload.weight w ~obj l in
            if h > !best_w then begin
              best := l;
              best_w := h
            end)
          ls;
        copies.(obj) <- [ !best ]
  done

(* The hot objects: contributions summed over the hottest attribution
   sites, largest total first (ties: lower object id). *)
let hot_objects attr ~k =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (site, _) ->
      let contribs =
        match site with
        | `Edge edge -> Attribution.edge_contributions attr ~edge
        | `Bus bus -> Attribution.bus_contributions attr ~bus
      in
      List.iter
        (fun (c : Attribution.contribution) ->
          let prev = try Hashtbl.find tbl c.Attribution.obj with Not_found -> 0 in
          Hashtbl.replace tbl c.Attribution.obj (prev + c.Attribution.amount))
        contribs)
    (Attribution.hotspots attr ~k:(2 * k));
  Hashtbl.fold (fun o a acc -> (o, a) :: acc) tbl []
  |> List.sort (fun (o1, a1) (o2, a2) ->
         if a1 <> a2 then compare a2 a1 else compare o1 o2)
  |> List.filteri (fun i _ -> i < k)
  |> List.map fst |> Array.of_list

type proposal = Add of int | Move of int * int | Remove of int

(* Hot-object hill climb on the live engine. Every proposal is priced in
   migration bytes (size x edges moved) against the hard budget before
   it is even tried; the whole climb commits only if the hysteresis
   inequality holds, else the outer checkpoint rolls everything back. *)
let climb cfg tree leaves eng ~prng ~hot =
  let cp0 = Loads.checkpoint eng in
  let c0 = Loads.congestion eng in
  let current = ref c0 in
  let bytes = ref 0 and repl = ref 0 and migr = ref 0 and contr = ref 0 in
  let nearest_dist obj l =
    List.fold_left
      (fun acc c -> min acc (Tree.path_length tree l c))
      max_int
      (Loads.copies eng ~obj)
  in
  let num_leaves = Array.length leaves in
  for _ = 1 to cfg.climb_iters do
    let obj = hot.(Prng.int prng (Array.length hot)) in
    let copies = Loads.copies eng ~obj in
    let k = List.length copies in
    if k > 0 && num_leaves > 0 then begin
      let prop =
        match Prng.int prng 3 with
        | 0 ->
          let l = leaves.(Prng.int prng num_leaves) in
          if Loads.has_copy eng ~obj l then None
          else Some (Add l, cfg.obj_size * nearest_dist obj l)
        | 1 ->
          let src = List.nth copies (Prng.int prng k) in
          let dst = leaves.(Prng.int prng num_leaves) in
          if Loads.has_copy eng ~obj dst then None
          else Some (Move (src, dst), cfg.obj_size * Tree.path_length tree src dst)
        | _ ->
          if k < 2 then None
          else Some (Remove (List.nth copies (Prng.int prng k)), 0)
      in
      match prop with
      | None -> ()
      | Some (p, cost) ->
        if !bytes + cost <= cfg.budget_bytes then begin
          let cp = Loads.checkpoint eng in
          (match p with
          | Add l -> Loads.add_copy eng ~obj l
          | Move (src, dst) -> Loads.move_copy eng ~obj ~src ~dst
          | Remove l -> Loads.remove_copy eng ~obj l);
          let c = Loads.congestion eng in
          (* Strict improvement: equal-congestion churn would burn the
             migration budget for nothing. *)
          if c < !current then begin
            current := c;
            bytes := !bytes + cost;
            match p with
            | Add _ -> incr repl
            | Move _ -> incr migr
            | Remove _ -> incr contr
          end
          else Loads.rollback eng cp
        end
    end
  done;
  let saved = c0 -. !current in
  let allowed =
    cfg.hysteresis *. saved
    *. float_of_int cfg.slots_per_epoch
    *. float_of_int cfg.msg_bytes
  in
  if saved > 0.0 && float_of_int !bytes <= allowed then
    (true, !bytes, !repl, !migr, !contr)
  else begin
    Loads.rollback eng cp0;
    (false, 0, 0, 0, 0)
  end

let run ?exec cfg source =
  validate cfg;
  let table_of, tree =
    match source with
    | Generator d -> ((fun e -> Drift.workload d ~epoch:e), Drift.tree d)
    | Tables ts ->
      if Array.length ts = 0 then invalid_arg "Serve.run: no tables";
      if Array.length ts < cfg.epochs then
        invalid_arg "Serve.run: tables cover fewer epochs than config.epochs";
      ((fun e -> ts.(e)), Workload.tree ts.(0))
  in
  let n = Tree.n tree in
  let num_edges = Tree.num_edges tree in
  let leaves = Tree.leaves_array tree in
  let layout = Epoch.layout ~slots_per_epoch:cfg.slots_per_epoch in
  let w0 = table_of 0 in
  let num_objects = Workload.num_objects w0 in
  let check_table w =
    let t = Workload.tree w in
    if Tree.n t <> n || Tree.num_edges t <> num_edges then
      invalid_arg "Serve.run: epoch table over a different topology shape";
    if Workload.num_objects w <> num_objects then
      invalid_arg "Serve.run: epoch table with a different object count"
  in
  (* Initial placement: the static strategy on the first table. *)
  let init = Strategy.run ?exec w0 in
  let cur =
    Array.init num_objects (fun obj ->
        Placement.copies init.Strategy.placement ~obj)
  in
  let stale = Array.copy cur in
  let tel = Telemetry.create ~capacity:cfg.capacity ~num_edges () in
  let mon = Monitor.create ~prefix:"serve" () in
  let stats_rev = ref [] in
  let prev_alert_count = ref 0 in
  let trigger_next = ref false in
  let total_requests = ref 0 in
  let total_bytes = ref 0 in
  let reopt_epochs = ref 0 in
  for e = 0 to cfg.epochs - 1 do
    let w = if e = 0 then w0 else table_of e in
    if e > 0 then check_table w;
    bootstrap w cur;
    let eng = Loads.of_copies w (Array.copy cur) in
    let attr = Attribution.attach eng in
    (* Epoch boundary: the previous epoch's alerts decide whether the
       hot objects get re-optimized before this epoch serves. *)
    let reopt, bytes, repl, migr, contr =
      if e > 0 && !trigger_next then begin
        let hot = hot_objects attr ~k:cfg.top_k in
        if Array.length hot = 0 then (false, 0, 0, 0, 0)
        else
          let prng =
            Prng.create
              (Int64.to_int (Prng.hash ~seed:cfg.seed [ 5; e ]) land max_int)
          in
          climb cfg tree leaves eng ~prng ~hot
      end
      else (false, 0, 0, 0, 0)
    in
    if reopt then begin
      for obj = 0 to num_objects - 1 do
        cur.(obj) <- Loads.copies eng ~obj
      done;
      incr reopt_epochs;
      total_bytes := !total_bytes + bytes
    end;
    let el = Loads.edge_loads eng in
    let c_serve = Loads.congestion eng in
    let c_stale =
      let st = Array.copy stale in
      bootstrap w st;
      Loads.congestion (Loads.of_copies w st)
    in
    (* The oracle is a fresh static re-place on this epoch's table,
       served through the same engine model (nearest-copy assignment)
       as the serving and stale numbers — one congestion scale. *)
    let c_oracle =
      if cfg.oracle then begin
        let res = Strategy.run ?exec w in
        let copies =
          Array.init num_objects (fun obj ->
              Placement.copies res.Strategy.placement ~obj)
        in
        Loads.congestion (Loads.of_copies w copies)
      end
      else Float.nan
    in
    let sent = Array.fold_left ( + ) 0 el in
    let peak = Array.fold_left max 0 el in
    let requests = Workload.total_requests w * cfg.slots_per_epoch in
    total_requests := !total_requests + requests;
    for s = 0 to cfg.slots_per_epoch - 1 do
      let abs = Epoch.absolute layout ~epoch:e ~slot:s in
      Telemetry.begin_round tel ~round:abs;
      Array.iteri
        (fun edge c ->
          if c > 0 then
            Telemetry.send_many tel ~edge ~count:c ~bytes:(c * cfg.msg_bytes))
        el;
      let j = Drift.slot_jitter ~seed:cfg.seed ~slot:abs in
      if j > 0 then
        Telemetry.send_many tel ~edge:(-1) ~count:j ~bytes:(j * cfg.msg_bytes);
      if s = 0 && reopt then
        Telemetry.reconfig tel ~replications:repl ~migrations:migr
          ~contractions:contr;
      Telemetry.end_round tel ~live_nodes:n;
      (* The monitor is fed the exact per-slot values directly — the
         collector may fold for memory, the detectors never miss a
         slot. *)
      let obs name v =
        Monitor.observe mon ~series:name ~round:abs ~vtime:(float_of_int abs)
          ~span:1 v
      in
      obs "sent" (float_of_int (sent + j));
      obs "bytes" (float_of_int ((sent + j) * cfg.msg_bytes));
      obs "congestion" c_serve;
      obs "edge_peak" (float_of_int peak);
      if sent > 0 then
        obs "hotspot_share" (float_of_int peak /. float_of_int sent);
      let at_boundary v = if s = 0 then float_of_int v else 0.0 in
      obs "replications" (at_boundary (if reopt then repl else 0));
      obs "migrations" (at_boundary (if reopt then migr else 0));
      obs "contractions" (at_boundary (if reopt then contr else 0));
      obs "live_nodes" (float_of_int n)
    done;
    (* Detach the attribution hook before the engine goes out of use. *)
    ignore (attr : Attribution.t);
    Loads.set_hook eng None;
    let all_alerts = Monitor.alerts mon in
    let count = List.length all_alerts in
    let fresh = List.filteri (fun i _ -> i >= !prev_alert_count) all_alerts in
    prev_alert_count := count;
    trigger_next := List.exists triggering fresh;
    stats_rev :=
      {
        s_epoch = e;
        s_requests = requests;
        s_congestion = c_serve;
        s_stale = c_stale;
        s_oracle = c_oracle;
        s_reoptimized = reopt;
        s_bytes_migrated = bytes;
        s_replications = repl;
        s_migrations = migr;
        s_contractions = contr;
        s_alerts = List.length fresh;
      }
      :: !stats_rev
  done;
  {
    epochs = List.rev !stats_rev;
    total_requests = !total_requests;
    total_bytes_migrated = !total_bytes;
    reoptimized_epochs = !reopt_epochs;
    verdict = Monitor.health mon;
    alerts = Monitor.alerts mon;
    telemetry = tel;
    monitor = mon;
    final_copies = cur;
  }

let tables d ~epochs =
  if epochs < 1 then invalid_arg "Serve.tables: epochs must be >= 1";
  Array.init epochs (fun e -> Drift.workload d ~epoch:e)

(* -- replay files ------------------------------------------------------- *)

let save_tables path ts =
  if Array.length ts = 0 then Error "no tables to save"
  else
    match open_out path with
    | exception Sys_error m -> Error m
    | oc ->
      let w0 = ts.(0) in
      let tree = Workload.tree w0 in
      Printf.fprintf oc "hbn-serve-tables 1\n";
      Printf.fprintf oc "epochs %d\nnodes %d\nobjects %d\n" (Array.length ts)
        (Tree.n tree) (Workload.num_objects w0);
      Array.iteri
        (fun e w ->
          for obj = 0 to Workload.num_objects w - 1 do
            List.iter
              (fun leaf ->
                let r = Workload.reads w ~obj leaf
                and wr = Workload.writes w ~obj leaf in
                if r > 0 || wr > 0 then
                  Printf.fprintf oc "e %d %d %d %d %d\n" e obj leaf r wr)
              (Workload.requesting_leaves w ~obj)
          done)
        ts;
      close_out oc;
      Ok ()

let load_tables ~tree path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
    let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
    let line () = try Some (input_line ic) with End_of_file -> None in
    let finish r =
      close_in ic;
      r
    in
    let scan_header name =
      match line () with
      | Some l -> (
        try Scanf.sscanf l "%s %d" (fun k v ->
                if k = name then Ok v else Error ("expected " ^ name))
        with Scanf.Scan_failure _ | Failure _ | End_of_file ->
          Error ("malformed " ^ name ^ " header"))
      | None -> Error "truncated header"
    in
    (match line () with
    | Some "hbn-serve-tables 1" -> (
      match (scan_header "epochs", scan_header "nodes", scan_header "objects")
      with
      | Ok epochs, Ok nodes, Ok objects ->
        if epochs < 1 then finish (fail "bad epoch count %d" epochs)
        else if nodes <> Tree.n tree then
          finish
            (fail "file recorded over %d nodes, tree has %d" nodes
               (Tree.n tree))
        else if objects < 1 then finish (fail "bad object count %d" objects)
        else begin
          let reads =
            Array.init epochs (fun _ -> Array.make_matrix objects (Tree.n tree) 0)
          in
          let writes =
            Array.init epochs (fun _ -> Array.make_matrix objects (Tree.n tree) 0)
          in
          let err = ref None in
          let rec go () =
            match line () with
            | None -> ()
            | Some "" -> go ()
            | Some l ->
              (try
                 Scanf.sscanf l "e %d %d %d %d %d" (fun e obj leaf r w ->
                     if e < 0 || e >= epochs then
                       err := Some (Printf.sprintf "epoch %d out of range" e)
                     else if obj < 0 || obj >= objects then
                       err := Some (Printf.sprintf "object %d out of range" obj)
                     else if leaf < 0 || leaf >= Tree.n tree then
                       err := Some (Printf.sprintf "node %d out of range" leaf)
                     else if not (Tree.is_leaf tree leaf) then
                       err :=
                         Some (Printf.sprintf "node %d is not a leaf" leaf)
                     else begin
                       reads.(e).(obj).(leaf) <- r;
                       writes.(e).(obj).(leaf) <- w
                     end)
               with Scanf.Scan_failure _ | Failure _ | End_of_file ->
                 err := Some ("malformed line: " ^ l));
              if !err = None then go ()
          in
          go ();
          match !err with
          | Some m -> finish (Error m)
          | None ->
            finish
              (try
                 Ok
                   (Array.init epochs (fun e ->
                        Workload.make tree ~reads:reads.(e) ~writes:writes.(e)))
               with Invalid_argument m -> Error m)
        end
      | Error m, _, _ | _, Error m, _ | _, _, Error m -> finish (Error m))
    | Some _ -> finish (Error "not an hbn-serve-tables file")
    | None -> finish (Error "empty file"))
