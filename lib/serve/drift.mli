(** Deterministic drifting-workload generators for the serving tier.

    A generator is a pure function [(seed, epoch) -> Workload.t]: rates
    come from the stateless, order-independent {!Hbn_prng.Prng.hash}, so
    the table for any epoch regenerates bit-identically regardless of
    which epochs were built before it — the property serve replay and
    [--jobs] byte-identity rest on. The shapes are the ROADMAP's three
    drift families plus a steady control:

    - [Steady]: rates independent of the epoch — the control that must
      trigger {e zero} re-optimizations.
    - [Diurnal]: every read rate scaled by a sinusoid of the epoch
      (period {!diurnal_period}) — slow global drift.
    - [Flash_crowd]: steady background; during the burst epochs of each
      {!flash_period}-epoch cycle, a hash-chosen subset of leaves reads
      object 0 at a many-fold rate — sudden, localized, transient.
    - [Hotspot_migration]: the hot quarter of the object space
      concentrates its reads in one of four contiguous leaf regions; the
      home region advances every {!migration_dwell} epochs — the shape
      whose stale-placement penalty epoch re-optimization must recover. *)

module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload

type kind = Steady | Diurnal | Flash_crowd | Hotspot_migration

val kind_name : kind -> string
(** ["steady"], ["diurnal"], ["flash_crowd"], ["hotspot_migration"]. *)

val kind_of_name : string -> kind option
(** Inverse of {!kind_name}. *)

val all_kinds : kind list

type t

val create : kind -> seed:int -> tree:Tree.t -> objects:int -> rate:int -> t
(** A generator over the tree's leaves. [rate] (>= 1) scales the base
    per-(leaf, object) request rates; [objects] must be >= 1 and the
    tree must have at least one leaf. *)

val kind : t -> kind

val tree : t -> Tree.t

val objects : t -> int

val workload : t -> epoch:int -> Workload.t
(** The epoch's request table — a pure function of (seed, kind, epoch);
    epochs may be generated in any order. *)

val jitter : t -> slot:int -> int
(** Deterministic per-slot wobble in [0..2], hashed from the absolute
    slot — off-edge noise the serving loop adds to the sent/bytes
    series so the monitor sees realistic variance during warmup. *)

val slot_jitter : seed:int -> slot:int -> int
(** {!jitter} as a standalone hash of [(seed, slot)] — what the serving
    loop uses, so a table replay reproduces the generator run's series
    byte for byte without holding a generator. *)

val diurnal_period : int
(** Epochs per sinusoid cycle (8). *)

val flash_period : int
(** Epochs per flash-crowd cycle (8); the burst covers 2 of them. *)

val migration_dwell : int
(** Epochs the hotspot stays in one region (4). *)
