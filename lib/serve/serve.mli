(** The epoch-based adaptive serving tier.

    Closes the loop the ROADMAP's headline item asks for: a long-running
    loop streams request traffic epoch by epoch through the incremental
    {!Hbn_loads.Loads} engine with an {!Hbn_obs.Attribution} table
    attached, one {!Hbn_obs.Monitor} armed over the serving telemetry,
    and — when the monitor's alerts say the pattern shifted — re-optimizes
    {e only the hot objects} at the next epoch boundary, gated by a
    migration-cost model and hysteresis.

    {2 The loop, per epoch}

    + Build the epoch's workload (a {!Drift} generator or a replayed
      table), rebuild the load engine on the current copy sets, attach
      attribution.
    + If the {e previous} epoch raised any alert on a non-reconfiguration
      series: take the [top_k] hottest objects from the attribution
      table's hotspot sites and hill-climb their copy sets through
      checkpoint/rollback proposals. Every accepted move is priced at
      [obj_size * edges_moved] bytes (replication pays the distance to
      the nearest existing copy; migration the src-dst path; dropping a
      copy is free) against the hard per-epoch [budget_bytes]. The whole
      climb then commits only if
      [bytes <= hysteresis * congestion_saved * slots_per_epoch *
       msg_bytes] — replacement traffic never exceeds the configured
      fraction of the traffic the congestion drop saves; otherwise the
      epoch rolls back to its checkpoint and serves stale.
    + Serve [slots_per_epoch] slots: each slot accounts the engine's
      per-edge loads into the telemetry collector ({!Telemetry.send_many}
      batched per edge, plus hashed off-edge jitter), records
      reconfiguration work on the boundary slot, and feeds the monitor
      one observation per series.

    Everything downstream of the workload tables is sequential and
    PRNG-seeded per epoch; the parallel [exec] only accelerates the
    initial/oracle placements, which are bit-identical at any job count —
    so state, telemetry and alerts are byte-identical across reruns and
    [--jobs]. *)

module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Telemetry = Hbn_obs.Telemetry
module Monitor = Hbn_obs.Monitor

type config = {
  slots_per_epoch : int;  (** slots per epoch (>= 1) *)
  epochs : int;  (** epochs to serve (>= 1) *)
  top_k : int;  (** hot objects eligible per re-optimization (>= 1) *)
  budget_bytes : int;  (** hard cap on migration bytes per epoch (>= 0) *)
  hysteresis : float;
      (** max migration bytes as a fraction of the bytes the congestion
          drop saves over the coming epoch (>= 0) *)
  obj_size : int;  (** bytes one copy transfer pays per edge (>= 1) *)
  msg_bytes : int;  (** bytes per request message (>= 1) *)
  climb_iters : int;  (** hill-climb proposals per re-optimization *)
  seed : int;  (** seeds the per-epoch climb PRNG and the slot jitter *)
  oracle : bool;
      (** also run the full static strategy on every epoch's table — the
          fresh re-place the bench measures recovery against *)
  capacity : int;  (** telemetry points retained (>= 2) *)
}

val default : config
(** 16 slots x 32 epochs, [top_k] 4, 4 KiB budget, hysteresis 0.5,
    64-byte objects, 32-byte messages, 200 climb proposals, seed 1,
    oracle on, capacity 512. *)

type source =
  | Generator of Drift.t  (** workloads from a drift generator *)
  | Tables of Workload.t array
      (** one table per epoch (a replay); must cover [config.epochs] *)

type epoch_stats = {
  s_epoch : int;
  s_requests : int;  (** requests served: table total x slots *)
  s_congestion : float;  (** serving congestion (after any commit) *)
  s_stale : float;  (** the frozen epoch-0 placement on this table *)
  s_oracle : float;  (** fresh re-place; [nan] when the oracle is off *)
  s_reoptimized : bool;  (** a re-optimization committed this epoch *)
  s_bytes_migrated : int;  (** migration bytes paid (0 unless committed) *)
  s_replications : int;  (** copies added by the commit *)
  s_migrations : int;  (** copies moved by the commit *)
  s_contractions : int;  (** copies dropped by the commit *)
  s_alerts : int;  (** monitor alerts raised during the epoch *)
}

type outcome = {
  epochs : epoch_stats list;  (** chronological *)
  total_requests : int;
  total_bytes_migrated : int;
  reoptimized_epochs : int;
  verdict : Monitor.verdict;
  alerts : Monitor.alert list;
  telemetry : Telemetry.t;  (** the serving series, for emit/report *)
  monitor : Monitor.t;  (** prefix ["serve"], matching the telemetry *)
  final_copies : int list array;  (** per-object copy sets at the end *)
}

val run : ?exec:Hbn_exec.Exec.t -> config -> source -> outcome
(** Serves [config.epochs] epochs. The initial placement is the static
    strategy on the first epoch's table; an object that only starts
    requesting in a later epoch is bootstrapped with one copy on its
    heaviest requesting leaf (both in the serving state and in the
    frozen stale baseline, so the comparison stays fair). Raises
    [Invalid_argument] on an invalid config, [Tables [||]], or tables
    shorter than [config.epochs]. *)

val tables : Drift.t -> epochs:int -> Workload.t array
(** The generator's first [epochs] tables — what {!save_tables} records
    for a replay. *)

val save_tables : string -> Workload.t array -> (unit, string) result
(** Writes the tables to a file in a line-oriented text format (header
    plus one sparse [e <epoch> <obj> <leaf> <reads> <writes>] line per
    non-zero cell). *)

val load_tables : tree:Tree.t -> string -> (Workload.t array, string) result
(** Reads tables saved by {!save_tables} back over [tree]. Fails with a
    message on a malformed file or one recorded over a different
    topology shape. *)
