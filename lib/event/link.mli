(** Per-level link delay and bandwidth for tree-of-buses networks.

    The minissf netsim exemplar parameterizes a hierarchical network as
    [L, N1 D1 B1 .. NL DL BL]: every level of the hierarchy has its own
    link delay and bandwidth. This module is that parameterization for
    our trees. A {!config} lists [(delay, bandwidth)] pairs root-down —
    the first clause describes the links incident to the root (level 1) —
    and a spec shorter than the tree extends its last clause to all
    deeper levels. Bandwidth is in message-bytes per virtual-time unit;
    [infinity] means transmission is instantaneous and only the
    propagation delay remains.

    Transmitting [bytes] over a level-[l] link costs
    [bytes / B_l + D_l] virtual time, and transmissions on one directed
    link serialize: a second message must wait for the first to clear
    the transmitter (the {!transmit} clock), which is where finite
    bandwidth turns into queueing backpressure.

    {!sync} — delay 1, infinite bandwidth on every level — is the
    distinguished configuration under which the event-driven engines
    reproduce the synchronous round semantics bit for bit (every
    transmission arrives exactly one tick after it was sent; see
    DESIGN.md §14 for the equivalence statement and its test). *)

module Tree = Hbn_tree.Tree

type config

val v : (float * float) array -> config
(** [(delay, bandwidth)] per level, root-down. Raises [Invalid_argument]
    if empty, a delay is negative/NaN/infinite, a bandwidth is not
    positive (bandwidth [infinity] is allowed), or a level combines zero
    delay with infinite bandwidth — a zero-transit link would collapse
    the virtual-time axis. The array is copied. *)

val sync : config
(** Delay 1, bandwidth [infinity] on every level: the synchronous
    regime. *)

val is_sync : config -> bool

val num_levels : config -> int

val delay : config -> level:int -> float
(** Propagation delay of level [level] (levels start at 1; deeper levels
    than the config lists reuse its last clause). *)

val bandwidth : config -> level:int -> float

val of_spec : string -> (config, string) result
(** Parses the CLI grammar ["D1:B1,D2:B2,…"] — one [DELAY:BANDWIDTH]
    clause per level, root-down; bandwidth may be ["inf"]. Errors name
    the offending clause by index and character offset, e.g.
    ["clause 2 at char 4: bad bandwidth \"x\" …"]. *)

val to_spec : config -> string
(** Canonical spec; [of_spec (to_spec c)] reproduces [c]. *)

(** {1 Attached links} *)

type t
(** A config bound to a concrete tree: per-edge levels plus one
    busy-until clock per directed link. The clocks are mutable run
    state — attach a fresh value per run. *)

val attach : config -> Tree.t -> t

val config : t -> config

val edge_level : t -> int -> int
(** The level of an edge: the depth of its deeper endpoint under the
    canonical rooting, so root-incident edges are level 1. *)

val latency : t -> edge:int -> bytes:int -> float
(** Unloaded transit time [bytes / B + D] over [edge] — no
    serialization, the cost the packet simulator charges per hop. Under
    {!sync} this is exactly 1 for any size. *)

val transmit : t -> now:float -> edge:int -> src:int -> bytes:int -> float
(** Serialized transmission: the message starts when the directed link
    [(edge, src→)] is free (but not before [now]), occupies it for
    [bytes / B], and arrives one propagation delay later; returns the
    arrival time and advances the link's busy-until clock. Under {!sync}
    the clock never blocks and the result is [now +. 1]. Raises
    [Invalid_argument] if [src] is not an endpoint of [edge]. *)
