module Tree = Hbn_tree.Tree

(* Per-level (delay, bandwidth) pairs, root-down: index 0 describes the
   links incident to the root (level 1). Specs shorter than the tree are
   extended by repeating the last clause — the minissf netsim
   parameterization `L, N1 D1 B1 .. NL DL BL` with a defaulting tail. *)
type config = { levels : (float * float) array }

let v levels =
  if Array.length levels = 0 then invalid_arg "Link.v: no levels";
  Array.iter
    (fun (d, b) ->
      if Float.is_nan d || d < 0. || d = Float.infinity then
        invalid_arg "Link.v: delay must be finite and >= 0";
      if Float.is_nan b || b <= 0. then
        invalid_arg "Link.v: bandwidth must be > 0 (inf allowed)";
      if d = 0. && b = Float.infinity then
        invalid_arg
          "Link.v: zero delay with infinite bandwidth means zero transit time")
    levels;
  { levels = Array.copy levels }

let sync = { levels = [| (1., Float.infinity) |] }

let is_sync c = Array.for_all (fun lv -> lv = (1., Float.infinity)) c.levels

let num_levels c = Array.length c.levels

let clause c ~level =
  if level < 1 then invalid_arg "Link: levels start at 1";
  c.levels.(min (level - 1) (Array.length c.levels - 1))

let delay c ~level = fst (clause c ~level)

let bandwidth c ~level = snd (clause c ~level)

(* -- spec grammar -------------------------------------------------------- *)

(* "D1:B1,D2:B2,..." — delay, colon, bandwidth per level root-down;
   bandwidth may be "inf". Errors carry the clause index (1-based) and
   the character offset of the offending clause in the spec string. *)

let num_to_string x =
  if x = Float.infinity then "inf" else Printf.sprintf "%g" x

let to_spec c =
  String.concat ","
    (Array.to_list
       (Array.map
          (fun (d, b) ->
            Printf.sprintf "%s:%s" (num_to_string d) (num_to_string b))
          c.levels))

let of_spec s =
  let ( let* ) r f = Result.bind r f in
  (* Split on commas, keeping each clause's start offset for errors. *)
  let clauses =
    let acc = ref [] and start = ref 0 in
    String.iteri (fun i ch -> if ch = ',' then begin
        acc := (!start, String.sub s !start (i - !start)) :: !acc;
        start := i + 1
      end) s;
    acc := (!start, String.sub s !start (String.length s - !start)) :: !acc;
    List.rev !acc
  in
  let err idx pos fmt =
    Printf.ksprintf
      (fun msg -> Error (Printf.sprintf "clause %d at char %d: %s" idx pos msg))
      fmt
  in
  let parse_clause idx (pos, raw) =
    let c = String.trim raw in
    if c = "" then err idx pos "empty clause (expected DELAY:BANDWIDTH)"
    else
      match String.index_opt c ':' with
      | None -> err idx pos "clause %S has no ':' (expected DELAY:BANDWIDTH)" c
      | Some i ->
        let ds = String.sub c 0 i in
        let bs = String.sub c (i + 1) (String.length c - i - 1) in
        let* d =
          match float_of_string_opt ds with
          | Some d when d >= 0. && d < Float.infinity && not (Float.is_nan d)
            -> Ok d
          | _ -> err idx pos "bad delay %S (expected a finite number >= 0)" ds
        in
        let* b =
          if bs = "inf" then Ok Float.infinity
          else
            match float_of_string_opt bs with
            | Some b when b > 0. && not (Float.is_nan b) -> Ok b
            | _ ->
              err idx pos
                "bad bandwidth %S (expected a positive number or \"inf\")" bs
        in
        if d = 0. && b = Float.infinity then
          err idx pos
            "zero delay with infinite bandwidth means zero transit time"
        else Ok (d, b)
  in
  let* levels =
    List.fold_left
      (fun acc (idx, clause) ->
        let* acc = acc in
        let* lv = parse_clause idx clause in
        Ok (lv :: acc))
      (Ok [])
      (List.mapi (fun i c -> (i + 1, c)) clauses)
  in
  match List.rev levels with
  | [] -> Error "empty link spec (the synchronous regime is \"1:inf\")"
  | levels -> Ok { levels = Array.of_list levels }

(* -- attached links ------------------------------------------------------ *)

(* A config bound to a concrete tree: per-edge level (depth of the
   deeper endpoint under the canonical rooting, so edges incident to the
   root are level 1) plus one busy-until clock per directed link for
   transmission serialization. *)
type t = {
  config : config;
  tree : Tree.t;
  edge_level : int array;
  free_at : float array;  (* busy-until, indexed 2*edge + direction *)
}

let attach config tree =
  let r = Tree.rooting tree in
  let m = Tree.num_edges tree in
  let edge_level =
    Array.init m (fun e ->
        let u, v = Tree.edge_endpoints tree e in
        max r.Tree.depth.(u) r.Tree.depth.(v))
  in
  { config; tree; edge_level; free_at = Array.make (2 * m) 0. }

let config t = t.config

let edge_level t e = t.edge_level.(e)

let xmit_time c ~level ~bytes =
  let b = bandwidth c ~level in
  if b = Float.infinity then 0. else float_of_int bytes /. b

let latency t ~edge ~bytes =
  let level = t.edge_level.(edge) in
  xmit_time t.config ~level ~bytes +. delay t.config ~level

let transmit t ~now ~edge ~src ~bytes =
  let u, v = Tree.edge_endpoints t.tree edge in
  let dir =
    if src = u then 0
    else if src = v then 1
    else
      invalid_arg
        (Printf.sprintf "Link.transmit: node %d is not an endpoint of edge %d"
           src edge)
  in
  let k = (2 * edge) + dir in
  let level = t.edge_level.(edge) in
  let start = Float.max now t.free_at.(k) in
  let finish = start +. xmit_time t.config ~level ~bytes in
  t.free_at.(k) <- finish;
  finish +. delay t.config ~level
