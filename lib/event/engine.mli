(** Deterministic discrete-event scheduler over virtual time.

    The engine executes scheduled callbacks in nondecreasing virtual-time
    order; same-instant callbacks run in [(rank, insertion)] order
    (see {!Pq} — rank 0 before rank 1, FIFO within a rank). Execution is
    a pure function of the schedule: no wall clock, no randomness, no
    dependence on heap shape, so a run is bit-identical across reruns,
    hosts and [--jobs] values. The asynchronous ports of the packet
    simulator and the distributed runtime are built on this guarantee —
    their sync-equivalence theorems (DESIGN.md §14) quantify over it.

    Callbacks may schedule further work (at or after the current instant),
    which is how the simulators express ticks, timers and message
    arrivals. An engine is single-owner and not thread-safe: one engine,
    one driver. *)

type t

val create : unit -> t
(** A fresh engine at virtual time 0 with nothing scheduled. *)

val now : t -> float
(** Current virtual time: the timestamp of the callback being executed
    (0 before the first {!step}). *)

val at : t -> ?rank:int -> time:float -> (unit -> unit) -> unit
(** Schedules a callback at absolute virtual [time]. [rank] (default 0)
    phases same-instant callbacks: lower ranks run first, FIFO within a
    rank. Raises [Invalid_argument] if [time] is NaN or lies strictly in
    the past. *)

val after : t -> ?rank:int -> delay:float -> (unit -> unit) -> unit
(** [after t ~delay f] is [at t ~time:(now t +. delay) f]; [delay] must
    be finite and [>= 0]. *)

val step : t -> bool
(** Executes the earliest pending callback, advancing [now] to its time.
    [false] iff nothing was pending. *)

val drain : t -> unit
(** Runs {!step} until the schedule is empty (including work scheduled
    by the callbacks themselves). *)

val pending : t -> int
(** Callbacks scheduled but not yet executed. *)

val executed : t -> int
(** Callbacks executed since {!create}. *)

val next_time : t -> float option
(** Virtual time of the earliest pending callback. *)
