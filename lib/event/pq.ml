(* Stable pairing heap keyed by virtual time.

   The discrete-event engine needs equal-time events to pop in the order
   they were scheduled — that is what makes a run a pure function of its
   inputs instead of an artifact of heap shape. Every [add] stamps the
   element with a monotonically increasing sequence number and the
   comparison is lexicographic on (time, rank, seq), a strict total
   order: no two elements ever compare equal, so the pairing-heap
   restructuring (which is free to reorder equal keys) cannot be
   observed. [rank] is a small secondary class the engine uses to phase
   same-instant events (deliveries before clock ticks); within one
   (time, rank) the order is insertion order, i.e. FIFO. *)

type 'a node = {
  time : float;
  rank : int;
  seq : int;
  value : 'a;
  mutable children : 'a node list;
}

type 'a t = {
  mutable root : 'a node option;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { root = None; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let precedes a b =
  a.time < b.time
  || (a.time = b.time
      && (a.rank < b.rank || (a.rank = b.rank && a.seq < b.seq)))

let merge a b =
  if precedes a b then begin
    a.children <- b :: a.children;
    a
  end
  else begin
    b.children <- a :: b.children;
    b
  end

(* Two-pass pairing, both passes iterative so a node with many children
   (every element can end up a direct child of the root) never overflows
   the stack. The second pass folds in reverse pair order — harmless,
   because correctness rests on the total order, not on tree shape. *)
let merge_pairs nodes =
  let rec pass acc = function
    | a :: b :: rest -> pass (merge a b :: acc) rest
    | [ x ] -> x :: acc
    | [] -> acc
  in
  match pass [] nodes with
  | [] -> None
  | x :: rest -> Some (List.fold_left merge x rest)

let add t ~time ?(rank = 0) value =
  if Float.is_nan time then invalid_arg "Pq.add: time is NaN";
  let node = { time; rank; seq = t.next_seq; value; children = [] } in
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  t.root <-
    (match t.root with None -> Some node | Some r -> Some (merge r node))

let min_elt t = Option.map (fun r -> (r.time, r.value)) t.root

let min_time t = Option.map (fun r -> r.time) t.root

let pop t =
  match t.root with
  | None -> None
  | Some r ->
    t.root <- merge_pairs r.children;
    t.size <- t.size - 1;
    Some (r.time, r.value)
