(* Deterministic discrete-event scheduler over virtual time.

   A thin driver around the stable priority queue: callbacks are
   scheduled at absolute virtual times and executed in (time, rank, seq)
   order. Determinism is inherited wholesale from {!Pq} — the engine
   itself holds no other ordering state — so two runs that schedule the
   same callbacks at the same times execute them identically, bit for
   bit, regardless of host, domain count or wall-clock jitter. *)

type t = {
  pq : (unit -> unit) Pq.t;
  mutable now : float;
  mutable executed : int;
}

let create () = { pq = Pq.create (); now = 0.; executed = 0 }

let now t = t.now

let pending t = Pq.length t.pq

let executed t = t.executed

let next_time t = Pq.min_time t.pq

let at t ?rank ~time f =
  if Float.is_nan time then invalid_arg "Engine.at: time is NaN";
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.at: time %g is in the past (now %g)" time t.now);
  Pq.add t.pq ~time ?rank f

let after t ?rank ~delay f =
  if Float.is_nan delay || delay < 0. then
    invalid_arg "Engine.after: delay must be >= 0";
  at t ?rank ~time:(t.now +. delay) f

let step t =
  match Pq.pop t.pq with
  | None -> false
  | Some (time, f) ->
    t.now <- time;
    t.executed <- t.executed + 1;
    f ();
    true

let drain t =
  while step t do
    ()
  done
