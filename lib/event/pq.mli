(** Stable mergeable priority queue over virtual time.

    A pairing heap whose elements are ordered by the lexicographic key
    [(time, rank, seq)] where [seq] is an insertion stamp issued by the
    queue itself. The stamp makes the order strict and total, so pops are
    deterministic — in particular, elements added with equal [time] (and
    equal [rank]) pop in insertion order, FIFO. This is the property the
    discrete-event engine's bit-identical-replay guarantee rests on, and
    the one the QCheck suite pins.

    [rank] is a small secondary class for phasing distinct kinds of
    same-instant work (the engine schedules message deliveries at rank 0
    and clock ticks at rank 1, so all arrivals at time [t] precede the
    tick at [t]). Most callers leave it at 0.

    Merging is what makes a pairing heap a pairing heap — it is used
    internally on every [pop] ([O(1)] amortized [add], [O(log n)]
    amortized [pop]); a public cross-queue merge is deliberately not
    exposed because two queues issue overlapping [seq] stamps, which
    would silently break the FIFO guarantee. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> time:float -> ?rank:int -> 'a -> unit
(** Inserts [value] at [time] (default [rank] 0), stamping it with the
    next sequence number. Raises [Invalid_argument] on a NaN time — NaN
    compares false against everything and would corrupt the heap
    order. *)

val min_elt : 'a t -> (float * 'a) option
(** The earliest element without removing it. *)

val min_time : 'a t -> float option

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest element — smallest [(time, rank,
    seq)] — or [None] on an empty queue. *)
