module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Nibble = Hbn_nibble.Nibble
module Prng = Hbn_prng.Prng
module Loads = Hbn_loads.Loads

let single_copy_per_object w pick =
  let copies =
    Array.init (Workload.num_objects w) (fun obj ->
        match Workload.requesting_leaves w ~obj with
        | [] -> []
        | leaves -> [ pick obj leaves ])
  in
  Placement.nearest w ~copies

let owner w =
  single_copy_per_object w (fun obj leaves ->
      let best = ref (-1) and best_w = ref (-1) in
      List.iter
        (fun leaf ->
          let h = Workload.weight w ~obj leaf in
          if h > !best_w then begin
            best := leaf;
            best_w := h
          end)
        leaves;
      !best)

let gravity_leaf w =
  let tree = Workload.tree w in
  single_copy_per_object w (fun obj leaves ->
      let weights = Workload.weight_vector w ~obj in
      let g = Nibble.gravity_center tree ~weights in
      let best = ref (-1) and best_d = ref max_int in
      List.iter
        (fun leaf ->
          let d = Tree.path_length tree leaf g in
          if d < !best_d then begin
            best := leaf;
            best_d := d
          end)
        leaves;
      !best)

let random_leaf ~prng w =
  single_copy_per_object w (fun _ leaves -> Prng.pick prng leaves)

let full_replication = Placement.full_replication

(* One hill-climb proposal over the copy sets. The two evaluation paths
   below (incremental engine, from-scratch rebuild) share this so their
   PRNG streams and proposal sequences are identical: membership is an
   O(1) set probe, copy lists are kept in canonical ascending order, and
   a no-op proposal (removing the only copy) consumes no further PRNG
   draws — matching the original structural-compare behaviour. *)
type proposal = Remove of int | Add of int | Move of int * int

let propose ~prng ~leaves ~has ~count ~sorted obj =
  let leaf = leaves.(Prng.int prng (Array.length leaves)) in
  if has obj leaf then
    if count obj > 1 then Some (Remove leaf) else None
  else if Prng.bool prng then Some (Add leaf)
  else
    (* Move: replace a random existing copy by the new leaf. *)
    Some (Move (Prng.pick prng (sorted obj), leaf))

let active_objects ~count w =
  List.filter
    (fun obj -> count obj > 0)
    (List.init (Workload.num_objects w) (fun i -> i))

let hill_climb ~iterations ~prng w copies =
  let leaves = Tree.leaves_array (Workload.tree w) in
  let eng = Loads.of_copies w copies in
  let count obj = Loads.num_copies eng ~obj in
  let active = active_objects ~count w in
  if active <> [] && Array.length leaves > 0 then begin
    let current = ref (Loads.congestion eng) in
    for _ = 1 to iterations do
      let obj = Prng.pick prng active in
      match
        propose ~prng ~leaves
          ~has:(fun obj l -> Loads.has_copy eng ~obj l)
          ~count
          ~sorted:(fun obj -> Loads.copies eng ~obj)
          obj
      with
      | None -> ()
      | Some p ->
        let cp = Loads.checkpoint eng in
        (match p with
        | Remove l -> Loads.remove_copy eng ~obj l
        | Add l -> Loads.add_copy eng ~obj l
        | Move (src, dst) -> Loads.move_copy eng ~obj ~src ~dst);
        let c = Loads.congestion eng in
        if c <= !current then current := c else Loads.rollback eng cp
    done
  end;
  Loads.snapshot eng

let hill_climb_scratch ?exec ~iterations ~prng w copies =
  let leaves = Tree.leaves_array (Workload.tree w) in
  let copies = Array.map (fun cs -> List.sort_uniq compare cs) copies in
  (* Candidate scoring is the hot path: each proposal rebuilds the
     nearest-copy assignment and re-evaluates every object's loads, both
     of which fan out per object on a parallel [exec]. *)
  let eval () =
    Placement.congestion ?exec w (Placement.nearest ?exec w ~copies)
  in
  let count obj = List.length copies.(obj) in
  let active = active_objects ~count w in
  if active <> [] && Array.length leaves > 0 then begin
    let current = ref (eval ()) in
    for _ = 1 to iterations do
      let obj = Prng.pick prng active in
      match
        propose ~prng ~leaves
          ~has:(fun obj l -> List.mem l copies.(obj))
          ~count
          ~sorted:(fun obj -> copies.(obj))
          obj
      with
      | None -> ()
      | Some p ->
        let old = copies.(obj) in
        copies.(obj) <-
          (match p with
          | Remove l -> List.filter (fun x -> x <> l) old
          | Add l -> List.sort compare (l :: old)
          | Move (src, dst) ->
            List.sort compare (dst :: List.filter (fun x -> x <> src) old));
        let c = eval () in
        if c <= !current then current := c else copies.(obj) <- old
    done
  end;
  Placement.nearest w ~copies

let local_search ?(iterations = 300) ~prng w =
  let copies =
    Array.init (Workload.num_objects w) (fun obj ->
        match Workload.requesting_leaves w ~obj with
        | [] -> []
        | leaf :: _ ->
          (* Start from the owner placement. *)
          let best = ref leaf and best_w = ref (-1) in
          List.iter
            (fun l ->
              let h = Workload.weight w ~obj l in
              if h > !best_w then begin
                best := l;
                best_w := h
              end)
            (Workload.requesting_leaves w ~obj);
          [ !best ])
  in
  hill_climb ~iterations ~prng w copies

let polish ?(iterations = 300) ~prng w placement =
  let tree = Workload.tree w in
  if not (Placement.leaf_only tree placement) then
    invalid_arg "Baselines.polish: placement must be leaf-only";
  let copies =
    Array.init (Workload.num_objects w) (fun obj ->
        Placement.copies placement ~obj)
  in
  let improved = hill_climb ~iterations ~prng w copies in
  (* The climb works on nearest-copy assignments, which may differ from
     the input's (possibly forwarded) assignments; keep the input when
     nothing better was found so the guarantee is monotone. *)
  if Placement.congestion w improved <= Placement.congestion w placement then
    improved
  else placement
