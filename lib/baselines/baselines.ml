module Tree = Hbn_tree.Tree
module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement
module Nibble = Hbn_nibble.Nibble
module Prng = Hbn_prng.Prng

let single_copy_per_object w pick =
  let copies =
    Array.init (Workload.num_objects w) (fun obj ->
        match Workload.requesting_leaves w ~obj with
        | [] -> []
        | leaves -> [ pick obj leaves ])
  in
  Placement.nearest w ~copies

let owner w =
  single_copy_per_object w (fun obj leaves ->
      let best = ref (-1) and best_w = ref (-1) in
      List.iter
        (fun leaf ->
          let h = Workload.weight w ~obj leaf in
          if h > !best_w then begin
            best := leaf;
            best_w := h
          end)
        leaves;
      !best)

let gravity_leaf w =
  let tree = Workload.tree w in
  single_copy_per_object w (fun obj leaves ->
      let weights = Workload.weight_vector w ~obj in
      let g = Nibble.gravity_center tree ~weights in
      let best = ref (-1) and best_d = ref max_int in
      List.iter
        (fun leaf ->
          let d = Tree.path_length tree leaf g in
          if d < !best_d then begin
            best := leaf;
            best_d := d
          end)
        leaves;
      !best)

let random_leaf ~prng w =
  single_copy_per_object w (fun _ leaves -> Prng.pick prng leaves)

let full_replication = Placement.full_replication

let hill_climb ~iterations ~prng w copies =
  let leaves = Array.of_list (Tree.leaves (Workload.tree w)) in
  let eval cs = Placement.congestion w (Placement.nearest w ~copies:cs) in
  let current = ref (eval copies) in
  let active_objects =
    List.filter
      (fun obj -> copies.(obj) <> [])
      (List.init (Workload.num_objects w) (fun i -> i))
  in
  if active_objects <> [] && Array.length leaves > 0 then
    for _ = 1 to iterations do
      let obj = Prng.pick prng active_objects in
      let leaf = leaves.(Prng.int prng (Array.length leaves)) in
      let old = copies.(obj) in
      let proposal =
        if List.mem leaf old then
          if List.length old > 1 then List.filter (fun l -> l <> leaf) old
          else old
        else if Prng.bool prng then leaf :: old
        else
          (* Move: replace a random existing copy by the new leaf. *)
          let victim = Prng.pick prng old in
          leaf :: List.filter (fun l -> l <> victim) old
      in
      if proposal <> old then begin
        copies.(obj) <- proposal;
        let c = eval copies in
        if c <= !current then current := c else copies.(obj) <- old
      end
    done;
  Placement.nearest w ~copies

let local_search ?(iterations = 300) ~prng w =
  let copies =
    Array.init (Workload.num_objects w) (fun obj ->
        match Workload.requesting_leaves w ~obj with
        | [] -> []
        | leaf :: _ ->
          (* Start from the owner placement. *)
          let best = ref leaf and best_w = ref (-1) in
          List.iter
            (fun l ->
              let h = Workload.weight w ~obj l in
              if h > !best_w then begin
                best := l;
                best_w := h
              end)
            (Workload.requesting_leaves w ~obj);
          [ !best ])
  in
  hill_climb ~iterations ~prng w copies

let polish ?(iterations = 300) ~prng w placement =
  let tree = Workload.tree w in
  if not (Placement.leaf_only tree placement) then
    invalid_arg "Baselines.polish: placement must be leaf-only";
  let copies =
    Array.init (Workload.num_objects w) (fun obj ->
        Placement.copies placement ~obj)
  in
  let improved = hill_climb ~iterations ~prng w copies in
  (* The climb works on nearest-copy assignments, which may differ from
     the input's (possibly forwarded) assignments; keep the input when
     nothing better was found so the guarantee is monotone. *)
  if Placement.congestion w improved <= Placement.congestion w placement then
    improved
  else placement
