(** Baseline placement strategies for the comparison experiments (E10/E11).

    None of these carries a worst-case guarantee in the bus model; they
    bracket the extended-nibble strategy from below (naive single-copy and
    random placements) and from above in replication degree (full
    replication), plus a congestion-driven local search as a strong
    heuristic competitor. All produce leaf-only placements with
    nearest-copy (strict) assignments. *)

module Workload = Hbn_workload.Workload
module Placement = Hbn_placement.Placement

val owner : Workload.t -> Placement.t
(** One copy per object on its most-requesting processor (its "owner" or
    home node; ties to the lowest id) — the classical directory-style
    baseline. Objects without requests get no copy. *)

val gravity_leaf : Workload.t -> Placement.t
(** One copy per object on the processor closest to the object's center of
    gravity — single-copy placement with global topology awareness. *)

val random_leaf : prng:Hbn_prng.Prng.t -> Workload.t -> Placement.t
(** One copy per object on a uniformly random requesting processor. *)

val full_replication : Workload.t -> Placement.t
(** A copy on every processor: reads are free, writes broadcast over the
    whole tree ({!Placement.full_replication}). *)

val local_search :
  ?iterations:int ->
  prng:Hbn_prng.Prng.t ->
  Workload.t ->
  Placement.t
(** Hill-climbing on the congestion, starting from {!owner}: each step
    proposes adding, removing, or moving one copy of a random object on a
    random processor and keeps the proposal if the congestion does not
    increase (with strict improvement required every so often to
    terminate). [iterations] proposals are made (default 300). Runs on
    {!hill_climb}. *)

val hill_climb :
  iterations:int ->
  prng:Hbn_prng.Prng.t ->
  Workload.t ->
  int list array ->
  Placement.t
(** The climb itself, from explicit per-object copy sets. Proposals are
    applied as deltas to one incremental [Hbn_loads.Loads] engine and
    rolled back when the congestion worsens — O(height) per proposal
    instead of a full re-evaluation. Produces exactly the same placements
    as {!hill_climb_scratch} for the same seed (pinned by a regression
    test); duplicate nodes in the input lists are collapsed, and the
    input arrays are not mutated. *)

val hill_climb_scratch :
  ?exec:Hbn_exec.Exec.t ->
  iterations:int ->
  prng:Hbn_prng.Prng.t ->
  Workload.t ->
  int list array ->
  Placement.t
(** Reference implementation of {!hill_climb} that rebuilds
    [Placement.nearest] and re-evaluates the whole workload on every
    proposal. Kept for differential tests and [bench/loads.exe], which
    records the speedup of the engine over this path. [exec] parallelizes
    each proposal's candidate scoring per object; the proposal stream and
    the resulting placement are identical at any job count. *)

val polish :
  ?iterations:int ->
  prng:Hbn_prng.Prng.t ->
  Workload.t ->
  Placement.t ->
  Placement.t
(** The same hill-climbing started from an existing leaf-only placement
    (typically the extended-nibble output). Proposals are only accepted
    when the congestion does not increase, so the result keeps any
    guarantee the input carried — polishing the 7-approximation can only
    tighten it. Raises [Invalid_argument] on placements with bus
    copies. *)
