(* A hand-rolled domain pool: workers block on a condition variable until
   a task generation is published, then race over an atomic index counter.
   No dependencies beyond the stdlib — the toolchain pins no domainslib. *)

type pool = {
  target : int;  (* configured worker domains, excluding the caller *)
  mutable spawned : int;  (* workers actually running, <= target *)
  mutex : Mutex.t;
  work : Condition.t;  (* a new generation (or shutdown) is available *)
  idle : Condition.t;  (* a worker finished the current generation *)
  mutable generation : int;
  mutable task : (int -> unit) option;
  mutable total : int;
  next : int Atomic.t;
  mutable unfinished : int;  (* workers still draining the current task *)
  mutable error : exn option;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
}

type t = Sequential | Pool of pool

let sequential = Sequential

(* Which executor slot the current domain occupies: 0 for the calling
   (or any non-pool) domain, i for the pool's i-th worker. Stored in
   domain-local state so sinks can tag events with their producer. *)
let worker_slot : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let current_worker () = Domain.DLS.get worker_slot

let record_error pool e =
  Mutex.lock pool.mutex;
  if pool.error = None then pool.error <- Some e;
  Mutex.unlock pool.mutex

(* Drain the current task: claim indices until the counter runs past the
   end. Runs outside the lock; each index is claimed by exactly one
   domain, and results are written to distinct slots. *)
let drain pool f total =
  try
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add pool.next 1 in
      if i >= total then continue := false else f i
    done
  with e -> record_error pool e

let worker pool =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while pool.generation = !seen && not pool.closed do
      Condition.wait pool.work pool.mutex
    done;
    if pool.closed then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      seen := pool.generation;
      let f = Option.get pool.task in
      let total = pool.total in
      Mutex.unlock pool.mutex;
      drain pool f total;
      Mutex.lock pool.mutex;
      pool.unfinished <- pool.unfinished - 1;
      if pool.unfinished = 0 then Condition.broadcast pool.idle;
      Mutex.unlock pool.mutex
    end
  done

(* Workers are spawned lazily, on first demand: a [jobs:4] runner used
   only for a 2-task map spins up one domain, not three. Called with the
   pool mutex held. A freshly spawned worker immediately blocks on that
   mutex, so it observes the published generation only after [run_pool]
   finishes setting it up. *)
let ensure_workers pool n =
  let want = min pool.target (max 0 (n - 1)) in
  while pool.spawned < want do
    let i = pool.spawned in
    pool.spawned <- i + 1;
    pool.domains <-
      Domain.spawn (fun () ->
          Domain.DLS.set worker_slot (i + 1);
          worker pool)
      :: pool.domains
  done

let create ~jobs =
  if jobs <= 1 then Sequential
  else
    Pool
      {
        target = jobs - 1;
        spawned = 0;
        mutex = Mutex.create ();
        work = Condition.create ();
        idle = Condition.create ();
        generation = 0;
        task = None;
        total = 0;
        next = Atomic.make 0;
        unfinished = 0;
        error = None;
        closed = false;
        domains = [];
      }

let jobs = function Sequential -> 1 | Pool p -> p.target + 1

let spawned_workers = function
  | Sequential -> 0
  | Pool p ->
    Mutex.lock p.mutex;
    let s = p.spawned in
    Mutex.unlock p.mutex;
    s

let shutdown = function
  | Sequential -> ()
  | Pool pool ->
    Mutex.lock pool.mutex;
    if not pool.closed then begin
      pool.closed <- true;
      Condition.broadcast pool.work;
      Mutex.unlock pool.mutex;
      List.iter Domain.join pool.domains;
      pool.domains <- []
    end
    else Mutex.unlock pool.mutex

let with_runner ~jobs f =
  let r = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown r) (fun () -> f r)

let run_pool pool n f =
  Mutex.lock pool.mutex;
  if pool.closed then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Exec.map: runner already shut down"
  end;
  ensure_workers pool n;
  pool.task <- Some f;
  pool.total <- n;
  Atomic.set pool.next 0;
  pool.error <- None;
  pool.unfinished <- pool.spawned;
  pool.generation <- pool.generation + 1;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  (* The calling domain is the pool's extra executor. *)
  drain pool f n;
  Mutex.lock pool.mutex;
  while pool.unfinished > 0 do
    Condition.wait pool.idle pool.mutex
  done;
  pool.task <- None;
  let err = pool.error in
  pool.error <- None;
  Mutex.unlock pool.mutex;
  match err with None -> () | Some e -> raise e

let map t n f =
  match t with
  | Sequential -> Array.init n f
  | Pool pool ->
    if n = 0 then [||]
    else begin
      (* An option array sidesteps the need for a dummy element of ['a]
         (Array.make with a forged value would corrupt flat float
         arrays). The mutex handshake at task completion publishes the
         slot writes to the calling domain. *)
      let out = Array.make n None in
      run_pool pool n (fun i -> out.(i) <- Some (f i));
      Array.map
        (function
          | Some v -> v
          | None -> invalid_arg "Exec.map: task skipped after error")
        out
    end

let iter t n f =
  match t with
  | Sequential ->
    for i = 0 to n - 1 do
      f i
    done
  | Pool pool -> if n > 0 then run_pool pool n f

(* Chunked scheduling: tasks claim blocks of [chunk] consecutive indices
   from the atomic counter instead of single indices, amortizing the
   fetch-and-add and the per-task cache traffic (SNIPPETS snippet 3's
   BLOCK partitioning, made dynamic). 8 blocks per executor keeps enough
   slack for load balancing while shrinking counter contention by the
   chunk factor. *)
let auto_chunk ~jobs n = max 1 (n / (8 * jobs))

let run_chunked pool n f ~chunk =
  if chunk = 1 then run_pool pool n f
  else begin
    let chunks = (n + chunk - 1) / chunk in
    run_pool pool chunks (fun ci ->
        let lo = ci * chunk in
        let hi = min n (lo + chunk) in
        for i = lo to hi - 1 do
          f i
        done)
  end

let resolve_chunk t n = function
  | Some c ->
    if c < 1 then invalid_arg "Exec: chunk must be at least 1";
    c
  | None -> auto_chunk ~jobs:(jobs t) n

let iter_chunked ?chunk t n f =
  match t with
  | Sequential ->
    ignore (resolve_chunk t n chunk);
    for i = 0 to n - 1 do
      f i
    done
  | Pool pool ->
    if n > 0 then run_chunked pool n f ~chunk:(resolve_chunk t n chunk)

let map_chunked ?chunk t n f =
  match t with
  | Sequential ->
    ignore (resolve_chunk t n chunk);
    Array.init n f
  | Pool pool ->
    if n = 0 then [||]
    else begin
      let out = Array.make n None in
      run_chunked pool n
        (fun i -> out.(i) <- Some (f i))
        ~chunk:(resolve_chunk t n chunk);
      Array.map
        (function
          | Some v -> v
          | None -> invalid_arg "Exec.map_chunked: task skipped after error")
        out
    end
