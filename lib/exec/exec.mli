(** Pluggable execution layer for the embarrassingly parallel parts of the
    pipeline.

    The extended-nibble strategy's Steps 1–2 and the per-object load
    evaluation touch only one object's data at a time, so they can be
    fanned out across OCaml 5 domains. A runner abstracts over the two
    backends: {!sequential} runs tasks inline in index order; a domain
    pool ({!create} with [jobs > 1]) runs them on [jobs - 1] worker
    domains plus the calling domain, pulling indices from a shared atomic
    counter.

    Determinism contract: {!map} always returns [\[| f 0; …; f (n-1) |\]]
    — results land in index order regardless of which domain computed
    them — so a pipeline whose tasks are pure functions of their index
    produces bit-identical output at any [jobs]. Tasks must not touch
    shared mutable state. {!Hbn_obs.Trace} is domain-safe (a mutex
    serializes emission), so a span inside a task is not a race — but
    its position in the trace would depend on scheduling, so pipeline
    tasks still emit no spans and leave tracing to the sequential merge
    phases, keeping traces byte-identical at any job count. *)

type t

val sequential : t
(** The inline backend: [map sequential n f] is [Array.init n f]. *)

val create : jobs:int -> t
(** [create ~jobs] is a runner executing up to [jobs] tasks concurrently.
    [jobs <= 1] returns {!sequential}; otherwise the runner targets
    [jobs - 1] worker domains plus the caller. Workers are spawned
    {e lazily}: a map of [n] tasks spins up at most [min (jobs - 1)
    (n - 1)] domains, so small fan-outs on a wide runner never pay for
    idle domains. Call {!shutdown} when done, or use {!with_runner}. *)

val jobs : t -> int
(** Configured concurrency width: [1] for {!sequential}. Independent of
    how many workers have actually been spawned
    ({!spawned_workers}). *)

val spawned_workers : t -> int
(** Worker domains currently running: [0] for {!sequential} or an unused
    pool, at most [jobs t - 1]. Grows monotonically with demand. *)

val current_worker : unit -> int
(** The executor slot of the calling domain: [0] on the main (or any
    non-pool) domain, [i >= 1] inside the [i]-th worker domain of a pool.
    Observability sinks use this to tag each event with the domain that
    produced it ({!Hbn_obs.Sink.with_attrs}); a domain spawned by one
    pool keeps its slot for the pool's lifetime. *)

val shutdown : t -> unit
(** Joins the pool's worker domains. Idempotent; a no-op on
    {!sequential}. Using a runner after shutdown raises
    [Invalid_argument]. *)

val with_runner : jobs:int -> (t -> 'a) -> 'a
(** [with_runner ~jobs f] runs [f] with a fresh runner and shuts it down
    afterwards, also on exceptions. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map r n f] computes [f i] for [0 <= i < n] — concurrently on a pool
    backend — and returns the results in index order. If any task raises,
    one of the raised exceptions is re-raised in the caller after all
    domains quiesce (remaining tasks may be skipped). Not reentrant: do
    not call [map] on the same pool from inside a task. *)

val iter : t -> int -> (int -> unit) -> unit
(** [iter r n f] is [map] without result collection. *)

(** {1 Chunked scheduling}

    {!map} costs one atomic fetch-and-add (plus cache traffic on the
    shared counter) per task. When tasks are small, batching [chunk]
    consecutive indices per claim amortizes that overhead. Results are
    still written to per-index slots and returned in index order, so
    chunked maps are bit-identical to {!map} for pure [f] at any [jobs]
    and any chunk size — chunking changes scheduling, never results. *)

val auto_chunk : jobs:int -> int -> int
(** [auto_chunk ~jobs n = max 1 (n / (8 * jobs))]: 8 claimable blocks
    per executor — enough slack for dynamic load balancing, few enough
    that counter contention becomes negligible. *)

val map_chunked : ?chunk:int -> t -> int -> (int -> 'a) -> 'a array
(** [map_chunked ?chunk r n f] is {!map} with [chunk] indices claimed
    per counter round-trip ([chunk] defaults to {!auto_chunk}; a task
    executes its chunk's indices in ascending order). Raises
    [Invalid_argument] when [chunk < 1]. *)

val iter_chunked : ?chunk:int -> t -> int -> (int -> unit) -> unit
(** {!map_chunked} without result collection. *)
