(** Pluggable execution layer for the embarrassingly parallel parts of the
    pipeline.

    The extended-nibble strategy's Steps 1–2 and the per-object load
    evaluation touch only one object's data at a time, so they can be
    fanned out across OCaml 5 domains. A runner abstracts over the two
    backends: {!sequential} runs tasks inline in index order; a domain
    pool ({!create} with [jobs > 1]) runs them on [jobs - 1] worker
    domains plus the calling domain, pulling indices from a shared atomic
    counter.

    Determinism contract: {!map} always returns [\[| f 0; …; f (n-1) |\]]
    — results land in index order regardless of which domain computed
    them — so a pipeline whose tasks are pure functions of their index
    produces bit-identical output at any [jobs]. Tasks must not touch
    shared mutable state. {!Hbn_obs.Trace} is domain-safe (a mutex
    serializes emission), so a span inside a task is not a race — but
    its position in the trace would depend on scheduling, so pipeline
    tasks still emit no spans and leave tracing to the sequential merge
    phases, keeping traces byte-identical at any job count. *)

type t

val sequential : t
(** The inline backend: [map sequential n f] is [Array.init n f]. *)

val create : jobs:int -> t
(** [create ~jobs] is a runner executing up to [jobs] tasks concurrently.
    [jobs <= 1] returns {!sequential}; otherwise a pool of [jobs - 1]
    worker domains is spawned eagerly (the caller is the [jobs]-th
    executor). Call {!shutdown} when done, or use {!with_runner}. *)

val jobs : t -> int
(** Concurrency width: [1] for {!sequential}. *)

val current_worker : unit -> int
(** The executor slot of the calling domain: [0] on the main (or any
    non-pool) domain, [i >= 1] inside the [i]-th worker domain of a pool.
    Observability sinks use this to tag each event with the domain that
    produced it ({!Hbn_obs.Sink.with_attrs}); a domain spawned by one
    pool keeps its slot for the pool's lifetime. *)

val shutdown : t -> unit
(** Joins the pool's worker domains. Idempotent; a no-op on
    {!sequential}. Using a runner after shutdown raises
    [Invalid_argument]. *)

val with_runner : jobs:int -> (t -> 'a) -> 'a
(** [with_runner ~jobs f] runs [f] with a fresh runner and shuts it down
    afterwards, also on exceptions. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map r n f] computes [f i] for [0 <= i < n] — concurrently on a pool
    backend — and returns the results in index order. If any task raises,
    one of the raised exceptions is re-raised in the caller after all
    domains quiesce (remaining tasks may be skipped). Not reentrant: do
    not call [map] on the same pool from inside a task. *)

val iter : t -> int -> (int -> unit) -> unit
(** [iter r n f] is [map] without result collection. *)
