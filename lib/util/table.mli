(** Plain-text table rendering for the experiment harness.

    The bench executable regenerates the paper's result rows as aligned
    ASCII tables; this module does the layout. *)

type align = Left | Right

type t
(** A table under construction: a header plus accumulated rows. *)

val create : ?aligns:align list -> string list -> t
(** [create ?aligns header] starts a table with the given column names.
    [aligns] defaults to right-aligning every column except the first. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row. Rows shorter than the header are padded
    with empty cells; longer rows raise [Invalid_argument]. *)

val add_sep : t -> unit
(** [add_sep t] appends a horizontal separator line. *)

val render : t -> string
(** [render t] lays the table out with a box-drawing rule under the header. *)

val print : t -> unit
(** [print t] writes [render t] followed by a newline to stdout. *)

val fmt_float : ?digits:int -> float -> string
(** [fmt_float ~digits x] renders [x] with a fixed number of fraction digits
    (default 3), using ["-"] for [nan]. *)

val fmt_ratio : float -> float -> string
(** [fmt_ratio num den] renders [num /. den] with 3 digits, or ["inf"] /
    ["-"] for degenerate denominators. *)
