let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev = function
  | [] -> nan
  | xs ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
      /. float_of_int (List.length xs)
    in
    sqrt var

let median = function
  | [] -> nan
  | xs ->
    let sorted = List.sort compare xs in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2)
    else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.

let percentile p = function
  | [] -> nan
  | xs ->
    let sorted = Array.of_list (List.sort compare xs) in
    let n = Array.length sorted in
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let lo = max 0 (min (n - 1) lo) and hi = max 0 (min (n - 1) hi) in
    if lo = hi then sorted.(lo)
    else
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let min_max = function
  | [] -> (nan, nan)
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let pearson pairs =
  let n = List.length pairs in
  if n < 2 then nan
  else begin
    let nf = float_of_int n in
    let xs = List.map fst pairs and ys = List.map snd pairs in
    let mx = mean xs and my = mean ys in
    let cov =
      List.fold_left (fun acc (x, y) -> acc +. ((x -. mx) *. (y -. my))) 0. pairs
    in
    let sx = stddev xs and sy = stddev ys in
    if sx = 0. || sy = 0. then nan else cov /. (nf *. sx *. sy)
  end

(* Average ranks so that ties get the mean of the positions they occupy. *)
let ranks xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare arr.(a) arr.(b)) idx;
  let rank = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && arr.(idx.(!j + 1)) = arr.(idx.(!i)) do incr j done;
    let avg = float_of_int (!i + !j) /. 2. in
    for k = !i to !j do rank.(idx.(k)) <- avg done;
    i := !j + 1
  done;
  Array.to_list rank

let spearman pairs =
  if List.length pairs < 2 then nan
  else
    let rx = ranks (List.map fst pairs) and ry = ranks (List.map snd pairs) in
    pearson (List.combine rx ry)

let linear_fit pairs =
  let n = List.length pairs in
  if n < 2 then (nan, nan)
  else begin
    let nf = float_of_int n in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pairs in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pairs in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pairs in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pairs in
    let denom = (nf *. sxx) -. (sx *. sx) in
    if denom = 0. then (nan, nan)
    else
      let slope = ((nf *. sxy) -. (sx *. sy)) /. denom in
      let intercept = (sy -. (slope *. sx)) /. nf in
      (slope, intercept)
  end

let histogram ~bins xs =
  match xs with
  | [] -> [||]
  | _ ->
    let lo, hi = min_max xs in
    let width = if hi = lo then 1. else (hi -. lo) /. float_of_int bins in
    let counts = Array.make bins 0 in
    let bucket x =
      let b = int_of_float ((x -. lo) /. width) in
      max 0 (min (bins - 1) b)
    in
    List.iter (fun x -> counts.(bucket x) <- counts.(bucket x) + 1) xs;
    Array.init bins (fun b ->
        let blo = lo +. (float_of_int b *. width) in
        (blo, blo +. width, counts.(b)))
