(** Small descriptive-statistics helpers used by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; [nan] on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; [nan] on the empty list. *)

val median : float list -> float
(** Median (average of the two middle elements for even lengths);
    [nan] on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] is the [p]-th percentile of [xs] for [p] in [0, 100],
    using nearest-rank interpolation; [nan] on the empty list. *)

val min_max : float list -> float * float
(** Minimum and maximum; [(nan, nan)] on the empty list. *)

val pearson : (float * float) list -> float
(** Pearson correlation coefficient of paired samples; [nan] when fewer than
    two pairs or when either marginal is constant. *)

val spearman : (float * float) list -> float
(** Spearman rank correlation (Pearson on average ranks, so ties are
    handled); [nan] under the same conditions as {!pearson}. *)

val linear_fit : (float * float) list -> float * float
(** [linear_fit pts] is the least-squares [(slope, intercept)];
    [(nan, nan)] with fewer than two points. *)

val histogram : bins:int -> float list -> (float * float * int) array
(** [histogram ~bins xs] buckets [xs] into [bins] equal-width bins over
    [[min xs, max xs]]; each cell is [(lo, hi, count)]. *)
