type align = Left | Right

type row = Cells of string list | Separator

type t = {
  header : string list;
  aligns : align list;
  mutable rows : row list; (* reverse order *)
}

let create ?aligns header =
  let aligns =
    match aligns with
    | Some a -> a
    | None ->
      List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  { header; aligns; rows = [] }

let add_row t cells =
  let n = List.length t.header and k = List.length cells in
  if k > n then invalid_arg "Table.add_row: too many cells";
  let padded =
    if k = n then cells else cells @ List.init (n - k) (fun _ -> "")
  in
  t.rows <- Cells padded :: t.rows

let add_sep t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure t.header;
  List.iter (function Cells c -> measure c | Separator -> ()) rows;
  let pad align width s =
    let missing = width - String.length s in
    if missing <= 0 then s
    else
      match align with
      | Left -> s ^ String.make missing ' '
      | Right -> String.make missing ' ' ^ s
  in
  let render_cells cells =
    let padded =
      List.mapi
        (fun i c ->
          let align = try List.nth t.aligns i with Failure _ -> Right in
          pad align widths.(i) c)
        cells
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let body =
    List.map (function Cells c -> render_cells c | Separator -> rule) rows
  in
  String.concat "\n" ((rule :: render_cells t.header :: rule :: body) @ [ rule ])

let print t = print_endline (render t)

let fmt_float ?(digits = 3) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" digits x

let fmt_ratio num den =
  if den = 0. then if num = 0. then "-" else "inf"
  else fmt_float (num /. den)
