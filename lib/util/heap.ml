type 'a entry = { mutable key : int; value : 'a; mutable pos : int }

type 'a handle = 'a entry

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let swap h i j =
  let a = h.data.(i) and b = h.data.(j) in
  h.data.(i) <- b;
  h.data.(j) <- a;
  b.pos <- i;
  a.pos <- j

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.data.(i).key < h.data.(parent).key then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.data.(l).key < h.data.(!smallest).key then smallest := l;
  if r < h.size && h.data.(r).key < h.data.(!smallest).key then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let ensure_capacity h =
  let cap = Array.length h.data in
  if h.size >= cap then begin
    let dummy = h.data.(0) in
    let fresh = Array.make (max 4 (2 * cap)) dummy in
    Array.blit h.data 0 fresh 0 h.size;
    h.data <- fresh
  end

let add_tracked h ~key value =
  let entry = { key; value; pos = h.size } in
  if Array.length h.data = 0 then h.data <- Array.make 4 entry
  else ensure_capacity h;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1);
  entry

let add h ~key value = ignore (add_tracked h ~key value)

let min_elt h =
  if h.size = 0 then None
  else
    let e = h.data.(0) in
    Some (e.key, e.value)

let pop_min h =
  if h.size = 0 then None
  else begin
    let e = h.data.(0) in
    h.size <- h.size - 1;
    e.pos <- -1;
    if h.size > 0 then begin
      let last = h.data.(h.size) in
      h.data.(0) <- last;
      last.pos <- 0;
      sift_down h 0
    end;
    Some (e.key, e.value)
  end

let mem h pred =
  let found = ref false in
  let i = ref 0 in
  while (not !found) && !i < h.size do
    if pred h.data.(!i).value then found := true else incr i
  done;
  !found

let handle_key e = e.key

let handle_value e = e.value

let in_heap e = e.pos >= 0

let rekey h e key =
  if e.pos < 0 then false
  else begin
    if e.pos >= h.size || h.data.(e.pos) != e then
      invalid_arg "Heap.rekey: handle belongs to a different heap";
    let old = e.key in
    e.key <- key;
    if key < old then sift_up h e.pos else sift_down h e.pos;
    true
  end

let of_list kvs =
  let h = create () in
  List.iter (fun (key, value) -> add h ~key value) kvs;
  h

let fold f h init =
  let acc = ref init in
  for i = 0 to h.size - 1 do
    let e = h.data.(i) in
    acc := f e.key e.value !acc
  done;
  !acc

let to_list h = fold (fun k v acc -> (k, v) :: acc) h []
