(** Mutable binary min-heaps over integer-keyed elements.

    Used by the mapping algorithm of the extended-nibble strategy to locate a
    free downward child edge in [O(log degree)] time, matching the runtime
    bound claimed in Theorem 4.3 of the paper. Keys may be updated in place
    ({!update_key}), though that entry point locates its element by linear
    scan — see its documentation for the complexity contract. *)

type 'a t
(** A min-heap whose elements carry a mutable integer key. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty heap. *)

val length : 'a t -> int
(** [length h] is the number of elements currently stored in [h]. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val add : 'a t -> key:int -> 'a -> unit
(** [add h ~key v] inserts [v] with priority [key]. *)

val min_elt : 'a t -> (int * 'a) option
(** [min_elt h] is the minimum-key binding, or [None] when empty. The heap
    is left unchanged. *)

val pop_min : 'a t -> (int * 'a) option
(** [pop_min h] removes and returns the minimum-key binding. *)

val update_key : 'a t -> ('a -> bool) -> int -> bool
(** [update_key h pred key] finds the first element satisfying [pred]
    and re-keys it to [key], restoring the heap order. Returns [false]
    when no element matches.

    {b Complexity:} the lookup is an [O(n)] linear scan over the backing
    array (the heap does not track element positions), followed by an
    [O(log n)] sift. Intended for small heaps — the mapping algorithm's
    per-node child-edge heaps, whose size is one node's degree; the hot
    path there uses {!add} / {!pop_min} instead, which keeps the
    [O(log degree)] bound of Theorem 4.3. If a caller ever needs
    re-keying on large heaps, add a position-tracking index first (and
    extend the regression tests in [test/test_heap.ml], which pin the
    re-keying-under-heap-order behaviour). *)

val mem : 'a t -> ('a -> bool) -> bool
(** [mem h pred] is [true] iff some element satisfies [pred] — the same
    [O(n)] scan {!update_key} performs, exposed so callers can probe
    without re-keying. *)

val of_list : (int * 'a) list -> 'a t
(** [of_list kvs] builds a heap from key/value pairs in [O(n)]. *)

val to_list : 'a t -> (int * 'a) list
(** [to_list h] is all bindings in unspecified order. *)

val fold : (int -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** [fold f h init] folds over all bindings in unspecified order. *)
