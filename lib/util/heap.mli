(** Mutable binary min-heaps over integer-keyed elements.

    Used by the mapping algorithm of the extended-nibble strategy to locate a
    free downward child edge in [O(log degree)] time, matching the runtime
    bound claimed in Theorem 4.3 of the paper. Keys may be updated in place
    ({!update_key}); the heap keeps track of element positions to support
    this in logarithmic time. *)

type 'a t
(** A min-heap whose elements carry a mutable integer key. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty heap. *)

val length : 'a t -> int
(** [length h] is the number of elements currently stored in [h]. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val add : 'a t -> key:int -> 'a -> unit
(** [add h ~key v] inserts [v] with priority [key]. *)

val min_elt : 'a t -> (int * 'a) option
(** [min_elt h] is the minimum-key binding, or [None] when empty. The heap
    is left unchanged. *)

val pop_min : 'a t -> (int * 'a) option
(** [pop_min h] removes and returns the minimum-key binding. *)

val update_key : 'a t -> ('a -> bool) -> int -> bool
(** [update_key h pred key] finds the first element satisfying [pred]
    (linear scan) and re-keys it to [key], restoring the heap order.
    Returns [false] when no element matches. Intended for small heaps
    (children of one node); for the hot path use {!add} / {!pop_min}. *)

val of_list : (int * 'a) list -> 'a t
(** [of_list kvs] builds a heap from key/value pairs in [O(n)]. *)

val to_list : 'a t -> (int * 'a) list
(** [to_list h] is all bindings in unspecified order. *)

val fold : (int -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** [fold f h init] folds over all bindings in unspecified order. *)
