(** Mutable binary min-heaps over integer-keyed elements.

    Used by the mapping algorithm of the extended-nibble strategy to locate a
    free downward child edge in [O(log degree)] time, matching the runtime
    bound claimed in Theorem 4.3 of the paper. Every element tracks its
    position in the backing array, so re-keying through a {!handle}
    ({!add_tracked} / {!rekey}) is [O(log n)]. *)

type 'a t
(** A min-heap whose elements carry a mutable integer key. *)

type 'a handle
(** A stable reference to one element of one heap, valid until the element
    is popped ({!in_heap} tells). *)

val create : unit -> 'a t
(** [create ()] is a fresh empty heap. *)

val length : 'a t -> int
(** [length h] is the number of elements currently stored in [h]. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val add : 'a t -> key:int -> 'a -> unit
(** [add h ~key v] inserts [v] with priority [key]. *)

val add_tracked : 'a t -> key:int -> 'a -> 'a handle
(** Like {!add} but returns a handle for later [O(log n)] re-keying with
    {!rekey}. *)

val rekey : 'a t -> 'a handle -> int -> bool
(** [rekey h handle key] re-keys the element behind [handle] and restores
    heap order in [O(log n)]. Returns [false] when the element has already
    been popped. Raises [Invalid_argument] if [handle] was obtained from a
    different heap. *)

val handle_key : 'a handle -> int
(** The element's current key. Meaningless after the element is popped. *)

val handle_value : 'a handle -> 'a

val in_heap : 'a handle -> bool
(** [true] until the element is removed by {!pop_min}. *)

val min_elt : 'a t -> (int * 'a) option
(** [min_elt h] is the minimum-key binding, or [None] when empty. The heap
    is left unchanged. *)

val pop_min : 'a t -> (int * 'a) option
(** [pop_min h] removes and returns the minimum-key binding. *)

val mem : 'a t -> ('a -> bool) -> bool
(** [mem h pred] is [true] iff some element satisfies [pred] — an [O(n)]
    scan, exposed so callers can probe without holding a handle. *)

val of_list : (int * 'a) list -> 'a t
(** [of_list kvs] builds a heap from key/value pairs in [O(n)]. *)

val to_list : 'a t -> (int * 'a) list
(** [to_list h] is all bindings in unspecified order. *)

val fold : (int -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** [fold f h init] folds over all bindings in unspecified order. *)
