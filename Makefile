# Convenience targets; everything is plain dune underneath.
#
# Formatting: the project is hand-formatted in the default ocamlformat
# style, but no `.ocamlformat` file is committed because the toolchain
# this repo pins does not ship ocamlformat. If you have it installed,
# `ocamlformat --enable-outside-detected-project` matches the style.

.PHONY: all build test check bench bench-check bench-loads bench-parallel clean

all: build

build:
	dune build

test:
	dune runtest

# The one-stop gate: what CI (and reviewers) run. The loads smoke run
# cross-checks the incremental engine against the from-scratch climb on
# a small instance; the parallel smoke run checks that the strategy is
# bit-identical at 1, 2 and 4 domains (no JSON written by either);
# bench-check re-runs the pipeline case matrix and diffs its
# deterministic fields against the committed BENCH_pipeline.json.
check:
	dune build && dune runtest && dune exec bench/loads.exe -- --smoke \
	  && dune exec bench/parallel.exe -- --smoke \
	  && dune exec test/test_main.exe -- test exec \
	  && $(MAKE) bench-check

bench:
	dune exec bench/pipeline.exe

# Fails (exit 1) if the deterministic fields of a fresh pipeline run —
# congestion, makespan, counters, instance shape — diverge from the
# committed BENCH_pipeline.json. Timings and the meta header are ignored.
bench-check:
	dune exec bench/check.exe

# Scratch vs incremental hill-climb throughput; writes BENCH_loads.json.
bench-loads:
	dune exec bench/loads.exe

# Domain-scaling of the per-object pipeline at --jobs 1/2/4; writes
# BENCH_parallel.json (speedups are only meaningful on a multicore host;
# the JSON records the detected core count).
bench-parallel:
	dune exec bench/parallel.exe

clean:
	dune clean
