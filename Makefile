# Convenience targets; everything is plain dune underneath.
#
# Formatting: the project is hand-formatted in the default ocamlformat
# style, but no `.ocamlformat` file is committed because the toolchain
# this repo pins does not ship ocamlformat. If you have it installed,
# `ocamlformat --enable-outside-detected-project` matches the style.

.PHONY: all build test check bench bench-loads clean

all: build

build:
	dune build

test:
	dune runtest

# The one-stop gate: what CI (and reviewers) run. The loads smoke run
# cross-checks the incremental engine against the from-scratch climb on
# a small instance (no JSON written).
check:
	dune build && dune runtest && dune exec bench/loads.exe -- --smoke

bench:
	dune exec bench/pipeline.exe

# Scratch vs incremental hill-climb throughput; writes BENCH_loads.json.
bench-loads:
	dune exec bench/loads.exe

clean:
	dune clean
