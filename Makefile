# Convenience targets; everything is plain dune underneath.
#
# Formatting: the project is hand-formatted in the default ocamlformat
# style, but no `.ocamlformat` file is committed because the toolchain
# this repo pins does not ship ocamlformat. If you have it installed,
# `ocamlformat --enable-outside-detected-project` matches the style.

.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# The one-stop gate: what CI (and reviewers) run.
check:
	dune build && dune runtest

bench:
	dune exec bench/pipeline.exe

clean:
	dune clean
