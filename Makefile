# Convenience targets; everything is plain dune underneath.
#
# Formatting: the project is hand-formatted in the default ocamlformat
# style, but no `.ocamlformat` file is committed because the toolchain
# this repo pins does not ship ocamlformat. If you have it installed,
# `ocamlformat --enable-outside-detected-project` matches the style.

.PHONY: all build test check bench bench-check bench-loads bench-parallel \
	bench-faults bench-async bench-monitor bench-serve bench-micro \
	bench-quick report-smoke serve-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# The one-stop gate: what CI (and reviewers) run. The loads smoke run
# cross-checks the incremental engine against the from-scratch climb on
# a small instance; the parallel smoke run checks that the strategy is
# bit-identical at 1, 2 and 4 domains; the faults smoke runs the
# hardened distributed protocol under a seeded drop/crash/cut plan and
# requires recovery (no JSON written by any of the three); the async
# smoke simulates one topology synchronously and on a slow lower tier
# and requires completion to rise while the traffic stays pinned; the
# simulate --faults/--link line exercises the same machinery end to end
# through the CLI; bench-quick cross-checks the Tree.Flat kernels against
# their list-returning Tree counterparts and the event engine's pairing
# heap against a stable sort; the monitor smoke replays the synthetic
# drift matrix and requires steady traffic to stay silent while every
# drift shape fires; report-smoke drives --trace/--telemetry recording,
# the report command's three renderers, and a --diff of a trace against
# itself (which must come back clean); the serve smoke replays the
# adaptive-serving matrix contract (steady silent, hotspot recovered
# within budget) and serve-smoke drives `hbn_cli serve` --record/--replay
# end to end; bench-check re-runs the pipeline, fault, async, monitor
# and serve case matrices and diffs their deterministic fields
# (telemetry series, detector hits, migration accounting) against the
# committed BENCH_pipeline.json, BENCH_faults.json, BENCH_async.json,
# BENCH_monitor.json and BENCH_serve.json, and validates the
# chunk-scheduling fields of BENCH_parallel.json.
check:
	dune build && dune runtest && dune exec bench/loads.exe -- --smoke \
	  && dune exec bench/parallel.exe -- --smoke \
	  && $(MAKE) bench-quick \
	  && dune exec bench/faults.exe -- --smoke \
	  && dune exec bench/async.exe -- --smoke \
	  && dune exec bench/monitor.exe -- --smoke \
	  && dune exec bench/serve.exe -- --smoke \
	  && dune exec bin/hbn_cli.exe -- simulate --kind balanced --arity 3 \
	       --height 3 --workload zipf --objects 8 --seed 7 \
	       --faults "drop=0.15,until=60,crash=2:10-30" --link "1:64,1:32" \
	  && dune exec test/test_main.exe -- test exec \
	  && $(MAKE) report-smoke \
	  && $(MAKE) serve-smoke \
	  && $(MAKE) bench-check

bench:
	dune exec bench/pipeline.exe

# Fails (exit 1) if the deterministic fields of a fresh pipeline,
# fault-recovery, async or drift-detection run — congestion, makespan,
# counters, instance shape, retransmission/fault accounting, detector
# hits — diverge from the committed BENCH_*.json baselines. Timings and
# the meta header are ignored.
bench-check:
	dune exec bench/check.exe

# Fault-injection recovery profile of the hardened distributed nibble
# under seeded drop/crash/cut plans; writes BENCH_faults.json.
bench-faults:
	dune exec bench/faults.exe

# Asynchronous-simulation profile: the same traffic per topology,
# simulated under each per-level delay/bandwidth link model; writes
# BENCH_async.json (completion varies with the link, congestion does
# not).
bench-async:
	dune exec bench/async.exe

# Streaming-monitor detection profile: synthetic drift workloads through
# the folding telemetry collector and the default detectors; writes
# BENCH_monitor.json (refuses to write if the hit/miss contract fails).
bench-monitor:
	dune exec bench/monitor.exe

# Trace-analytics smoke: trace a pipeline run plus a telemetry-recording
# fault run, then feed both files to `report` in all three formats
# (table to the terminal, json/chrome parse-checked by the command
# itself — any malformed line or analysis crash fails the target), and
# diff the telemetry trace against itself — monitors recomputed on both
# sides must agree exactly, so the verdict has to be "identical".
report-smoke:
	dune build bin/hbn_cli.exe
	dune exec --no-build bin/hbn_cli.exe -- place --kind balanced --arity 3 \
	  --height 3 --workload zipf --objects 8 --seed 7 \
	  --trace /tmp/hbn_report_smoke_trace.jsonl > /dev/null
	dune exec --no-build bin/hbn_cli.exe -- simulate --kind balanced \
	  --arity 3 --height 2 --workload zipf --seed 7 \
	  --faults "drop=0.1,until=50" \
	  --telemetry /tmp/hbn_report_smoke_tel.jsonl > /dev/null
	dune exec --no-build bin/hbn_cli.exe -- report /tmp/hbn_report_smoke_trace.jsonl
	dune exec --no-build bin/hbn_cli.exe -- report /tmp/hbn_report_smoke_trace.jsonl \
	  --format json > /dev/null
	dune exec --no-build bin/hbn_cli.exe -- report /tmp/hbn_report_smoke_trace.jsonl \
	  --format chrome > /dev/null
	dune exec --no-build bin/hbn_cli.exe -- report /tmp/hbn_report_smoke_tel.jsonl
	dune exec --no-build bin/hbn_cli.exe -- report /tmp/hbn_report_smoke_tel.jsonl \
	  --format json > /dev/null
	dune exec --no-build bin/hbn_cli.exe -- report /tmp/hbn_report_smoke_tel.jsonl \
	  --format chrome > /dev/null
	dune exec --no-build bin/hbn_cli.exe -- report /tmp/hbn_report_smoke_tel.jsonl \
	  --diff /tmp/hbn_report_smoke_tel.jsonl | grep -q "verdict: identical"
	rm -f /tmp/hbn_report_smoke_trace.jsonl /tmp/hbn_report_smoke_tel.jsonl
	@echo "report-smoke: table/json/chrome renderers + self-diff ok"

# Adaptive-serving profile: the four drift generators through the
# epoch-based serving tier (alert-triggered top-k re-optimization under
# a migration byte budget); writes BENCH_serve.json (refuses to write if
# the steady-silent / hotspot-recovery contract fails).
bench-serve:
	dune exec bench/serve.exe

# Serving-tier CLI smoke: run `serve` under hotspot-migration drift while
# recording the generated request tables, replay the recording (which
# must re-optimize the same epochs and migrate the same bytes — the
# summary lines are compared verbatim), and feed the recorded telemetry
# to `report` to prove the serving trace round-trips through the
# analytics pipeline.
serve-smoke:
	dune build bin/hbn_cli.exe
	dune exec --no-build bin/hbn_cli.exe -- serve --kind balanced --arity 3 \
	  --height 3 --objects 8 --drift hotspot_migration --epochs 16 \
	  --serve-seed 11 --record /tmp/hbn_serve_smoke_tables.txt \
	  --telemetry /tmp/hbn_serve_smoke_tel.jsonl > /tmp/hbn_serve_smoke_a.txt
	dune exec --no-build bin/hbn_cli.exe -- serve --kind balanced --arity 3 \
	  --height 3 --objects 8 --serve-seed 11 \
	  --replay /tmp/hbn_serve_smoke_tables.txt > /tmp/hbn_serve_smoke_b.txt
	diff /tmp/hbn_serve_smoke_a.txt /tmp/hbn_serve_smoke_b.txt
	dune exec --no-build bin/hbn_cli.exe -- report /tmp/hbn_serve_smoke_tel.jsonl \
	  --format json > /dev/null
	rm -f /tmp/hbn_serve_smoke_tables.txt /tmp/hbn_serve_smoke_tel.jsonl \
	  /tmp/hbn_serve_smoke_a.txt /tmp/hbn_serve_smoke_b.txt
	@echo "serve-smoke: record/replay identical + telemetry round-trip ok"

# Bechamel timings of the Tree.Flat primitive kernels (path folds,
# batched LCA, scratch reuse) next to their list-returning Tree
# counterparts. No JSON written; ns/run estimates print as a table.
bench-micro:
	dune exec bench/micro_main.exe

# Fast agreement pass over the same kernels — no timing, exit 1 on any
# flat/Tree divergence. Part of `make check`.
bench-quick:
	dune exec bench/micro_main.exe -- --smoke

# Scratch vs incremental hill-climb throughput; writes BENCH_loads.json.
bench-loads:
	dune exec bench/loads.exe

# Domain-scaling of the per-object pipeline at --jobs 1/2/4; writes
# BENCH_parallel.json (speedups are only meaningful on a multicore host;
# the JSON records the detected core count).
bench-parallel:
	dune exec bench/parallel.exe

clean:
	dune clean
